//! Schedule autotuning: candidate space, cost oracles, and search.
//!
//! The paper's headline numbers depend on picking the right schedule shape
//! for a given (model, cluster) point: strategy, microbatch count `N`,
//! W-pass lag, overlap, and collective chunking all trade bubble against
//! memory against wire time. This module turns that choice into a search
//! problem over the builder knobs of [`crate::builders::PipelineSpec`]:
//!
//! * [`Candidate`] — one point in knob space, convertible to a spec.
//! * [`TuneSpace`] — the grid of candidates, filtered to structurally
//!   valid combinations (divisibility, even-`P` WZB1, per-strategy knobs).
//! * [`CostOracle`] — prices a candidate. The real implementation lives in
//!   `wp-sim` (`DesOracle`: analytic estimate + discrete-event simulation);
//!   this crate only defines the interface so the IR layer stays free of
//!   simulator dependencies.
//! * [`Scheduler`] — a search policy. [`GridScheduler`] exhaustively
//!   evaluates the space; [`BeamScheduler`] ranks by the cheap estimate,
//!   fully evaluates only the top of the beam plus a seeded random
//!   exploration tail, and is deterministic for a fixed seed.
//!
//! All schedulers skip infeasible candidates (builder/validator rejection
//! or simulated OOM) rather than failing, and break cost ties by earliest
//! enumeration order, so results are reproducible across runs.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::builders::PipelineSpec;
use crate::ir::Strategy;

/// One point in the schedule-knob space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// Training strategy.
    pub strategy: Strategy,
    /// Microbatches per iteration `N`.
    pub microbatches: usize,
    /// Communication/computation overlap (builder double-buffering and
    /// engine-level overlap together).
    pub overlap: bool,
    /// W-pass lag override (split-backward strategies only).
    pub w_lag: Option<usize>,
    /// Collective chunk-count override (FSDP/DDP only).
    pub chunks: Option<usize>,
    /// Hierarchical group size (WeiPipe-Hier only): ranks per replica ring.
    /// `None` means one flat world-spanning ring.
    pub group: Option<usize>,
}

impl Candidate {
    /// The default builder configuration for `strategy` at `(P, N)`:
    /// overlap on, strategy-default lag and chunking. This is the baseline
    /// the autotuner must beat.
    pub fn default_for(strategy: Strategy, microbatches: usize) -> Self {
        Candidate {
            strategy,
            microbatches,
            overlap: true,
            w_lag: None,
            chunks: None,
            group: None,
        }
    }

    /// Whether `strategy` splits backward into B and W passes (and hence
    /// forces activation checkpointing off and accepts a W-lag knob).
    pub fn split_backward(&self) -> bool {
        matches!(
            self.strategy,
            Strategy::Zb1 | Strategy::Zb2 | Strategy::Wzb1 | Strategy::Wzb2
        )
    }

    /// Structural validity at world size `p` — the constraints the builders
    /// would otherwise panic on, plus knob/strategy applicability.
    pub fn check(&self, p: usize) -> Result<(), String> {
        let needs_divisible = matches!(
            self.strategy,
            Strategy::WeiPipeNaive
                | Strategy::WeiPipeInterleave
                | Strategy::WeiPipeHier
                | Strategy::Wzb1
                | Strategy::Wzb2
                | Strategy::Fsdp
                | Strategy::Ddp
        );
        if self.microbatches == 0 {
            return Err("microbatches must be >= 1".into());
        }
        if needs_divisible && !self.microbatches.is_multiple_of(p) {
            return Err(format!(
                "{} needs N % P == 0 (N={}, P={})",
                self.strategy.label(),
                self.microbatches,
                p
            ));
        }
        if self.strategy == Strategy::Wzb1 && !p.is_multiple_of(2) {
            return Err(format!("WZB1 needs even P (P={p})"));
        }
        if self.w_lag.is_some() && !matches!(self.strategy, Strategy::Zb1 | Strategy::Wzb1) {
            return Err(format!("{} takes no W-lag knob", self.strategy.label()));
        }
        if self.chunks.is_some() && !matches!(self.strategy, Strategy::Fsdp | Strategy::Ddp) {
            return Err(format!("{} takes no chunk knob", self.strategy.label()));
        }
        if self.chunks == Some(0) {
            return Err("chunk count must be >= 1".into());
        }
        if let Some(g) = self.group {
            if self.strategy != Strategy::WeiPipeHier {
                return Err(format!("{} takes no group knob", self.strategy.label()));
            }
            if g < 2 {
                return Err(format!("group size must be >= 2 (g={g})"));
            }
            if !p.is_multiple_of(g) {
                return Err(format!("group size must divide P (g={g}, P={p})"));
            }
        }
        Ok(())
    }

    /// The builder spec this candidate encodes at world size `p`.
    /// Split-backward strategies force recompute off (the deferred W pass
    /// needs the full forward context); everything else keeps the paper's
    /// long-context default of activation checkpointing on.
    pub fn spec(&self, p: usize) -> PipelineSpec {
        let mut spec = PipelineSpec::new(p, self.microbatches).with_overlap(self.overlap);
        if self.split_backward() {
            spec = spec.without_recompute();
        }
        if let Some(lag) = self.w_lag {
            spec = spec.with_w_lag(lag);
        }
        if let Some(chunks) = self.chunks {
            spec = spec.with_chunks(chunks);
        }
        if let Some(group) = self.group {
            spec = spec.with_group(group);
        }
        spec
    }

    /// Compact human label, e.g. `WZB1 N=16 lag=4 overlap`.
    pub fn label(&self) -> String {
        let mut s = format!("{} N={}", self.strategy.label(), self.microbatches);
        if let Some(lag) = self.w_lag {
            s.push_str(&format!(" lag={lag}"));
        }
        if let Some(chunks) = self.chunks {
            s.push_str(&format!(" chunks={chunks}"));
        }
        if let Some(group) = self.group {
            s.push_str(&format!(" g={group}"));
        }
        s.push_str(if self.overlap {
            " overlap"
        } else {
            " no-overlap"
        });
        s
    }
}

/// The candidate grid for one (model, cluster) point.
#[derive(Debug, Clone)]
pub struct TuneSpace {
    /// World size `P` (fixed by the cluster).
    pub ranks: usize,
    /// Strategies to consider.
    pub strategies: Vec<Strategy>,
    /// Microbatch counts `N` to sweep. Keep `G·N` (tokens per iteration)
    /// constant across entries if makespans are to be compared directly.
    pub microbatches: Vec<usize>,
    /// W-pass lags to sweep on split-backward strategies. The strategy
    /// default (`None`) is always included.
    pub w_lags: Vec<usize>,
    /// Collective chunk counts to sweep on FSDP/DDP. The default (`None`,
    /// i.e. `P`) is always included.
    pub chunk_counts: Vec<usize>,
    /// Hierarchical group sizes to sweep on WeiPipe-Hier. The flat default
    /// (`None`) is always included, so the search compares flat vs grouped.
    pub group_sizes: Vec<usize>,
    /// Overlap settings to sweep.
    pub overlap: Vec<bool>,
}

impl TuneSpace {
    /// A space holding only each strategy's default configuration at the
    /// given `(P, N)` — the degenerate grid the baselines come from.
    pub fn defaults(ranks: usize, microbatches: usize, strategies: &[Strategy]) -> Self {
        TuneSpace {
            ranks,
            strategies: strategies.to_vec(),
            microbatches: vec![microbatches],
            w_lags: Vec::new(),
            chunk_counts: Vec::new(),
            group_sizes: Vec::new(),
            overlap: vec![true],
        }
    }

    /// Enumerate every structurally valid candidate, in a deterministic
    /// order (strategy-major, then `N`, lag, chunks, overlap). Knobs that a
    /// strategy does not accept contribute only their `None` default, so
    /// the grid never contains redundant duplicates.
    pub fn enumerate(&self) -> Vec<Candidate> {
        let mut out = Vec::new();
        for &strategy in &self.strategies {
            let lags: Vec<Option<usize>> = if matches!(strategy, Strategy::Zb1 | Strategy::Wzb1) {
                std::iter::once(None)
                    .chain(self.w_lags.iter().copied().map(Some))
                    .collect()
            } else {
                vec![None]
            };
            let chunking: Vec<Option<usize>> = if matches!(strategy, Strategy::Fsdp | Strategy::Ddp)
            {
                std::iter::once(None)
                    .chain(self.chunk_counts.iter().copied().map(Some))
                    .collect()
            } else {
                vec![None]
            };
            let groupings: Vec<Option<usize>> = if strategy == Strategy::WeiPipeHier {
                std::iter::once(None)
                    .chain(self.group_sizes.iter().copied().map(Some))
                    .collect()
            } else {
                vec![None]
            };
            for &n in &self.microbatches {
                for &w_lag in &lags {
                    for &chunks in &chunking {
                        for &group in &groupings {
                            for &overlap in &self.overlap {
                                let c = Candidate {
                                    strategy,
                                    microbatches: n,
                                    overlap,
                                    w_lag,
                                    chunks,
                                    group,
                                };
                                if c.check(self.ranks).is_ok() {
                                    out.push(c);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Fully evaluated cost of one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleCost {
    /// Simulated iteration wall-clock, seconds.
    pub iter_s: f64,
    /// Idle fraction of all compute engines.
    pub bubble_ratio: f64,
    /// Worst per-rank peak memory, bytes.
    pub peak_mem_bytes: u64,
    /// Whether any rank exceeds device memory (infeasible).
    pub oom: bool,
}

/// Prices candidates. `estimate` is a cheap analytic proxy used only to
/// rank candidates inside a beam; `evaluate` is the ground truth (in
/// `wp-sim`, a full discrete-event simulation) and is what schedulers
/// ultimately compare.
pub trait CostOracle {
    /// Cheap analytic cost proxy, seconds. Must be deterministic; need not
    /// be accurate, only roughly monotone with `evaluate`.
    fn estimate(&self, c: &Candidate) -> f64;
    /// Ground-truth cost. `Err` marks a structurally invalid candidate
    /// (builder or validator rejection) and is skipped by schedulers.
    fn evaluate(&self, c: &Candidate) -> Result<ScheduleCost, String>;
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The winning candidate.
    pub best: Candidate,
    /// Its fully evaluated cost.
    pub cost: ScheduleCost,
    /// Candidates priced with the full oracle.
    pub evaluated: usize,
    /// Candidates skipped as infeasible (oracle `Err` or OOM).
    pub infeasible: usize,
}

/// A search policy over a [`TuneSpace`]. Returns `None` when no feasible
/// candidate exists.
pub trait Scheduler {
    /// Search `space`, pricing candidates through `oracle`.
    fn tune(&mut self, space: &TuneSpace, oracle: &dyn CostOracle) -> Option<TuneOutcome>;
}

/// Pick the cheaper of `best` and `(c, cost)`, skipping OOM and keeping
/// the earlier candidate on exact ties (strict `<`) so the result is
/// independent of evaluation order refinements.
fn fold_best(
    best: &mut Option<(Candidate, ScheduleCost)>,
    c: Candidate,
    cost: ScheduleCost,
) -> bool {
    if cost.oom {
        return false;
    }
    match best {
        Some((_, b)) if cost.iter_s >= b.iter_s => {}
        _ => *best = Some((c, cost)),
    }
    true
}

/// Exhaustive search: evaluates every candidate in the space with the full
/// oracle. The gold standard for small grids and the reference the beam
/// search is tested against.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridScheduler;

impl Scheduler for GridScheduler {
    fn tune(&mut self, space: &TuneSpace, oracle: &dyn CostOracle) -> Option<TuneOutcome> {
        let mut best: Option<(Candidate, ScheduleCost)> = None;
        let mut evaluated = 0usize;
        let mut infeasible = 0usize;
        for c in space.enumerate() {
            match oracle.evaluate(&c) {
                Ok(cost) => {
                    evaluated += 1;
                    if !fold_best(&mut best, c, cost) {
                        infeasible += 1;
                    }
                }
                Err(_) => infeasible += 1,
            }
        }
        best.map(|(best, cost)| TuneOutcome {
            best,
            cost,
            evaluated,
            infeasible,
        })
    }
}

/// Beam search: ranks the whole space by the cheap [`CostOracle::estimate`],
/// fully evaluates only the best `beam_width` candidates plus `explore`
/// seeded-random picks from the remainder, and returns the evaluated
/// minimum. For a fixed seed the outcome is fully deterministic.
#[derive(Debug, Clone, Copy)]
pub struct BeamScheduler {
    /// How many estimate-ranked candidates get a full evaluation.
    pub beam_width: usize,
    /// How many additional candidates outside the beam are sampled (without
    /// replacement) for full evaluation — insurance against a misleading
    /// estimate.
    pub explore: usize,
    /// RNG seed for the exploration sample.
    pub seed: u64,
}

impl BeamScheduler {
    /// A beam of `beam_width` with a small fixed exploration tail.
    pub fn new(beam_width: usize, seed: u64) -> Self {
        BeamScheduler {
            beam_width,
            explore: beam_width / 2,
            seed,
        }
    }
}

impl Scheduler for BeamScheduler {
    fn tune(&mut self, space: &TuneSpace, oracle: &dyn CostOracle) -> Option<TuneOutcome> {
        let all = space.enumerate();
        // Rank by estimate; ties break by enumeration order (stable sort).
        let mut order: Vec<usize> = (0..all.len()).collect();
        let scores: Vec<f64> = all.iter().map(|c| oracle.estimate(c)).collect();
        order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("estimate is NaN"));

        let beam = self.beam_width.min(order.len());
        let (head, tail) = order.split_at(beam);
        let mut picks: Vec<usize> = head.to_vec();

        // Seeded sample without replacement from the tail (partial
        // Fisher–Yates over a copy).
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tail: Vec<usize> = tail.to_vec();
        for _ in 0..self.explore.min(tail.len()) {
            let i = rng.random_range(0..tail.len());
            picks.push(tail.swap_remove(i));
        }

        let mut best: Option<(Candidate, ScheduleCost)> = None;
        let mut evaluated = 0usize;
        let mut infeasible = 0usize;
        for idx in picks {
            let c = all[idx];
            match oracle.evaluate(&c) {
                Ok(cost) => {
                    evaluated += 1;
                    if !fold_best(&mut best, c, cost) {
                        infeasible += 1;
                    }
                }
                Err(_) => infeasible += 1,
            }
        }
        best.map(|(best, cost)| TuneOutcome {
            best,
            cost,
            evaluated,
            infeasible,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::ALL_STRATEGIES;

    /// Deterministic fake oracle: cost is a hash-free closed form of the
    /// knobs, so tests can predict the argmin exactly.
    struct FakeOracle {
        /// Candidates (by label) to report as OOM.
        oom: Vec<String>,
    }

    impl FakeOracle {
        fn cost(c: &Candidate) -> f64 {
            // Favor WZB2, more microbatches, overlap, lag 4, chunks 2.
            let strat = match c.strategy {
                Strategy::Wzb2 => 0.0,
                Strategy::WeiPipeInterleave => 1.0,
                _ => 2.0,
            };
            let lag = match c.w_lag {
                Some(4) => 0.0,
                _ => 0.1,
            };
            let chunks = match c.chunks {
                Some(2) => 0.0,
                _ => 0.1,
            };
            strat + 1.0 / c.microbatches as f64 + if c.overlap { 0.0 } else { 0.5 } + lag + chunks
        }
    }

    impl CostOracle for FakeOracle {
        fn estimate(&self, c: &Candidate) -> f64 {
            Self::cost(c)
        }
        fn evaluate(&self, c: &Candidate) -> Result<ScheduleCost, String> {
            Ok(ScheduleCost {
                iter_s: Self::cost(c),
                bubble_ratio: 0.0,
                peak_mem_bytes: 1,
                oom: self.oom.contains(&c.label()),
            })
        }
    }

    fn space4() -> TuneSpace {
        TuneSpace {
            ranks: 4,
            strategies: ALL_STRATEGIES.to_vec(),
            microbatches: vec![4, 8],
            w_lags: vec![1, 4],
            chunk_counts: vec![2],
            group_sizes: vec![2],
            overlap: vec![true, false],
        }
    }

    #[test]
    fn enumerate_filters_structural_invalids_and_knob_applicability() {
        let mut space = space4();
        space.ranks = 3; // odd P: WZB1 must vanish entirely
        space.microbatches = vec![3, 4];
        let cands = space.enumerate();
        assert!(cands.iter().all(|c| c.check(3).is_ok()));
        assert!(!cands.iter().any(|c| c.strategy == Strategy::Wzb1));
        // Ring strategies only appear at N=3 (divisible), act-pipe at both.
        assert!(cands
            .iter()
            .filter(|c| c.strategy == Strategy::WeiPipeInterleave)
            .all(|c| c.microbatches == 3));
        assert!(cands
            .iter()
            .any(|c| c.strategy == Strategy::OneFOneB && c.microbatches == 4));
        // Knobs only on strategies that take them.
        assert!(cands
            .iter()
            .all(|c| c.w_lag.is_none() || matches!(c.strategy, Strategy::Zb1 | Strategy::Wzb1)));
        assert!(cands
            .iter()
            .all(|c| c.chunks.is_none() || matches!(c.strategy, Strategy::Fsdp | Strategy::Ddp)));
        assert!(cands
            .iter()
            .all(|c| c.group.is_none() || c.strategy == Strategy::WeiPipeHier));
        // g=2 does not divide P=3, so only flat hier candidates survive.
        assert!(cands
            .iter()
            .all(|c| !(c.strategy == Strategy::WeiPipeHier && c.group.is_some())));
    }

    #[test]
    fn group_knob_is_hier_only_and_must_divide_ranks() {
        let mut c = Candidate::default_for(Strategy::WeiPipeHier, 8);
        assert!(c.check(8).is_ok());
        c.group = Some(4);
        assert!(c.check(8).is_ok());
        assert_eq!(c.spec(8).group, Some(4));
        assert!(c.label().contains("g=4"));
        c.group = Some(3);
        assert!(c.check(8).is_err(), "3 does not divide 8");
        c.group = Some(1);
        assert!(c.check(8).is_err(), "singleton groups are degenerate");
        let mut flat = Candidate::default_for(Strategy::WeiPipeInterleave, 8);
        flat.group = Some(4);
        assert!(flat.check(8).is_err(), "group knob is hier-only");
    }

    #[test]
    fn grid_finds_global_argmin() {
        let out = GridScheduler
            .tune(&space4(), &FakeOracle { oom: vec![] })
            .unwrap();
        // Closed-form argmin of FakeOracle::cost over the valid space.
        assert_eq!(out.best.strategy, Strategy::Wzb2);
        assert_eq!(out.best.microbatches, 8);
        assert!(out.best.overlap);
        assert_eq!(out.infeasible, 0);
        assert!(out.evaluated > 50, "grid should cover the space");
    }

    #[test]
    fn grid_skips_oom_candidates() {
        let space = space4();
        // Mark every WZB2 candidate OOM: the winner must fall back.
        let oom: Vec<String> = space
            .enumerate()
            .iter()
            .filter(|c| c.strategy == Strategy::Wzb2)
            .map(|c| c.label())
            .collect();
        let n_oom = oom.len();
        let out = GridScheduler.tune(&space, &FakeOracle { oom }).unwrap();
        assert_ne!(out.best.strategy, Strategy::Wzb2);
        assert_eq!(out.best.strategy, Strategy::WeiPipeInterleave);
        assert_eq!(out.infeasible, n_oom);
    }

    #[test]
    fn no_feasible_candidate_returns_none() {
        let space = space4();
        let oom: Vec<String> = space.enumerate().iter().map(|c| c.label()).collect();
        assert!(GridScheduler.tune(&space, &FakeOracle { oom }).is_none());
    }

    #[test]
    fn beam_is_deterministic_and_matches_grid_on_honest_estimate() {
        let space = space4();
        let oracle = FakeOracle { oom: vec![] };
        let grid = GridScheduler.tune(&space, &oracle).unwrap();
        let a = BeamScheduler::new(8, 42).tune(&space, &oracle).unwrap();
        let b = BeamScheduler::new(8, 42).tune(&space, &oracle).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.evaluated, b.evaluated);
        // With estimate == evaluate the true optimum leads the beam.
        assert_eq!(a.best, grid.best);
        // The beam evaluated far fewer candidates than the grid.
        assert!(a.evaluated < grid.evaluated / 2);
    }

    #[test]
    fn candidate_spec_maps_knobs_onto_builder_spec() {
        let c = Candidate {
            strategy: Strategy::Wzb1,
            microbatches: 8,
            overlap: false,
            w_lag: Some(3),
            chunks: None,
            group: None,
        };
        let spec = c.spec(4);
        assert_eq!(spec.ranks, 4);
        assert_eq!(spec.microbatches, 8);
        assert!(!spec.overlap);
        assert!(!spec.recompute, "split backward forces recompute off");
        assert_eq!(spec.w_lag, Some(3));

        let d = Candidate::default_for(Strategy::OneFOneB, 16);
        let spec = d.spec(4);
        assert!(spec.recompute);
        assert!(spec.overlap);
        assert_eq!(spec.w_lag, None);
        assert_eq!(spec.chunks, None);
    }
}
