//! Communication analysis: byte counting from schedules, plus the paper's
//! §3 closed-form comparisons.

use crate::ir::{MsgKind, OpKind, Schedule};

/// Wire sizes of the four message payloads plus collective parameters, for
/// a concrete model/batch configuration. All in bytes.
#[derive(Debug, Clone, Copy)]
pub struct ByteModel {
    /// One chunk of weights (`L/P` layers × ~12H² params × wire width).
    pub weight_chunk: u64,
    /// One chunk of weight gradients (same element count as the weights).
    pub grad_chunk: u64,
    /// Boundary activations of one microbatch (`G·S·H` × wire width).
    pub act_boundary: u64,
    /// Boundary activation gradients (same count, bf16 in the paper).
    pub act_grad_boundary: u64,
}

/// Per-rank bytes sent, split by traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankBytes {
    /// Point-to-point payload bytes sent by this rank.
    pub p2p: u64,
    /// Bytes sent by this rank inside ring collectives.
    pub collective: u64,
}

impl RankBytes {
    /// Total bytes sent.
    pub fn total(&self) -> u64 {
        self.p2p + self.collective
    }
}

/// Count the bytes each rank sends over one iteration of a schedule.
///
/// Collectives are charged at the ring cost the comm substrate actually
/// implements: all-gather and reduce-scatter move `(P−1)/P · n` bytes per
/// rank, all-reduce `2·(P−1)/P · n`.
pub fn traffic(s: &Schedule, bytes: &ByteModel) -> Vec<RankBytes> {
    let p = s.ranks as u64;
    let mut out = vec![RankBytes::default(); s.ranks];
    for (rank, op) in s.iter_ops() {
        match &op.kind {
            OpKind::Send(k) => {
                let sz = match k.kind {
                    MsgKind::Weights => bytes.weight_chunk,
                    MsgKind::WeightGrads => bytes.grad_chunk,
                    MsgKind::Act => bytes.act_boundary,
                    MsgKind::ActGrad => bytes.act_grad_boundary,
                };
                out[rank].p2p += sz;
            }
            OpKind::AllGatherW { .. } => {
                out[rank].collective += bytes.weight_chunk * (p - 1) / p;
            }
            OpKind::ReduceScatterD { .. } => {
                out[rank].collective += bytes.grad_chunk * (p - 1) / p;
            }
            OpKind::AllReduceD { .. } => {
                out[rank].collective += 2 * bytes.grad_chunk * (p - 1) / p;
            }
            _ => {}
        }
    }
    out
}

/// Total bytes sent by all ranks over the iteration.
pub fn total_traffic(s: &Schedule, bytes: &ByteModel) -> u64 {
    traffic(s, bytes).iter().map(RankBytes::total).sum()
}

/// The paper's §3 crossover quantity: activation-to-weight payload ratio
/// `G·S / (12·H)` for one transformer layer. Weight-passing wins when this
/// exceeds ~1.
pub fn crossover_ratio(microbatch: usize, seq: usize, hidden: usize) -> f64 {
    (microbatch * seq) as f64 / (12.0 * hidden as f64)
}

/// Closed-form per-link steady-state bytes **per turn** for
/// WeiPipe-Interleave: two weight chunks plus one gradient chunk (§4.2.2's
/// `36H²` for a single Llama layer in fp16).
pub fn weipipe_interleave_bytes_per_turn(bytes: &ByteModel) -> u64 {
    2 * bytes.weight_chunk + bytes.grad_chunk
}

/// Closed-form per-boundary bytes per microbatch for activation-passing
/// pipelines: activations forward plus activation gradients backward
/// (`2·M_A` of §3.4).
pub fn act_pipe_bytes_per_microbatch(bytes: &ByteModel) -> u64 {
    bytes.act_boundary + bytes.act_grad_boundary
}

/// §3.4 steady-state total bandwidth usage (TBW, bytes/s per link) of an
/// activation-passing pipeline in "Zone 1" (fully alternating passes):
/// `TBW = 2·M_A·N / T_zone1`, where `T_zone1` is the steady-state span
/// covering the `N` microbatches.
pub fn act_pipe_tbw(bytes: &ByteModel, microbatches: usize, zone_secs: f64) -> f64 {
    (act_pipe_bytes_per_microbatch(bytes) * microbatches as u64) as f64 / zone_secs
}

/// §4.2.2 steady-state TBW of WeiPipe-Interleave per link: the `2W + 1D`
/// chunks of one turn divided by the turn duration `(T_F + T_B)/P`-style
/// (pass the concrete per-turn time).
pub fn weipipe_interleave_tbw(bytes: &ByteModel, turn_secs: f64) -> f64 {
    weipipe_interleave_bytes_per_turn(bytes) as f64 / turn_secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{build, PipelineSpec};
    use crate::ir::Strategy;

    fn bm(weight: u64, act: u64) -> ByteModel {
        ByteModel {
            weight_chunk: weight,
            grad_chunk: weight,
            act_boundary: act,
            act_grad_boundary: act,
        }
    }

    #[test]
    fn weipipe_traffic_independent_of_activation_size() {
        // The headline property: scaling the activation payload leaves
        // WeiPipe traffic untouched but scales 1F1B traffic.
        let spec = PipelineSpec::new(4, 8);
        let wp = build(Strategy::WeiPipeInterleave, spec);
        let f1b = build(Strategy::OneFOneB, spec);

        let small = bm(1000, 10);
        let big = bm(1000, 10_000);

        assert_eq!(
            total_traffic(&wp, &small),
            total_traffic(&wp, &big),
            "WeiPipe bytes must not depend on activation size"
        );
        assert!(
            total_traffic(&f1b, &big) > 100 * total_traffic(&f1b, &small) / 2,
            "1F1B bytes must scale with activation size"
        );
    }

    #[test]
    fn act_pipe_traffic_independent_of_weight_size() {
        let spec = PipelineSpec::new(4, 8);
        let f1b = build(Strategy::OneFOneB, spec);
        assert_eq!(
            total_traffic(&f1b, &bm(1, 500)),
            total_traffic(&f1b, &bm(1_000_000, 500))
        );
    }

    #[test]
    fn interleave_sends_about_three_chunks_per_turn() {
        // Steady-state: N·(per-rank turns) ≈ N/P rounds × P turns; total
        // weight+grad sends ≈ 3 chunks per rank per turn. Check the total is
        // within 25% of 3·P·turns for a long schedule.
        let p = 4;
        let n = 32;
        let s = build(Strategy::WeiPipeInterleave, PipelineSpec::new(p, n));
        let sends = s
            .iter_ops()
            .filter(|(_, op)| matches!(op.kind, OpKind::Send(_)))
            .count();
        let turns = (n / p + 2) * p; // steady + warmup + drain
        let expect = 3 * p * turns;
        let lo = expect * 3 / 4;
        let hi = expect * 5 / 4;
        assert!(
            sends >= lo && sends <= hi,
            "sends={sends}, expected ≈{expect}"
        );
    }

    #[test]
    fn naive_sends_more_than_interleave() {
        // The §4.2.1 flaw: redundant transmission. Per unit of compute the
        // naive schedule moves more weight bytes.
        let spec = PipelineSpec::new(4, 8);
        let naive = build(Strategy::WeiPipeNaive, spec);
        let inter = build(Strategy::WeiPipeInterleave, spec);
        let b = bm(100, 0);
        assert!(
            total_traffic(&naive, &b) > total_traffic(&inter, &b),
            "naive {} vs interleave {}",
            total_traffic(&naive, &b),
            total_traffic(&inter, &b)
        );
    }

    #[test]
    fn fsdp_collective_bytes_scale_with_model() {
        let spec = PipelineSpec::new(4, 8);
        let s = build(Strategy::Fsdp, spec);
        let t1 = total_traffic(&s, &bm(1000, 7));
        let t2 = total_traffic(&s, &bm(2000, 7));
        assert!(t2 > t1);
        let per_rank = traffic(&s, &bm(1000, 7));
        assert!(
            per_rank.iter().all(|r| r.p2p == 0),
            "FSDP is collective-only"
        );
        // Symmetric across ranks.
        assert!(per_rank
            .iter()
            .all(|r| r.collective == per_rank[0].collective));
    }

    #[test]
    fn crossover_matches_paper_examples() {
        // H=1024, S=4096, G=16: GS/(12H) = 65536/12288 ≈ 5.3 ≫ 1: weights win.
        assert!(crossover_ratio(16, 4096, 1024) > 5.0);
        // Tiny context, G=1: activations are cheaper.
        assert!(crossover_ratio(1, 128, 4096) < 0.01);
    }

    #[test]
    fn closed_forms() {
        let b = bm(12, 100);
        assert_eq!(weipipe_interleave_bytes_per_turn(&b), 36);
        assert_eq!(act_pipe_bytes_per_microbatch(&b), 200);
    }
}
