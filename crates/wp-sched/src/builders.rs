//! Schedule builders: every strategy compiled to the [`crate::ir`] IR.
//!
//! The WeiPipe family (naive, interleaved, WZB1/WZB2) is built on one ring
//! algebra, documented in [`weipipe`]; the activation-passing baselines
//! (GPipe, 1F1B, ZB1, ZB2) share one stage-pipeline skeleton; FSDP and DDP
//! are collective-based. Builders only decide *what happens in which order
//! on which rank* — byte counts, timing and memory sizing live in
//! `wp-sim` / `analysis`.

use crate::ir::{MemUnit, MsgKey, MsgKind, Op, OpKind, Schedule, Strategy, NO_MB};

pub use weipipe::{weipipe_mb_owner, FLOW_BWD, FLOW_FWD};

/// Every strategy the builders know, in the order the paper tables use.
pub const ALL_STRATEGIES: &[Strategy] = &[
    Strategy::GPipe,
    Strategy::OneFOneB,
    Strategy::Zb1,
    Strategy::Zb2,
    Strategy::Fsdp,
    Strategy::Ddp,
    Strategy::WeiPipeNaive,
    Strategy::WeiPipeInterleave,
    Strategy::Wzb1,
    Strategy::Wzb2,
    Strategy::WeiPipeHier,
];

/// What every builder needs to know about the run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineSpec {
    /// World size `P`. The pipeline/ring strategies divide the model into
    /// exactly `P` chunks; FSDP and DDP default to `P` but accept a
    /// [`Self::with_chunks`] override.
    pub ranks: usize,
    /// Microbatches per iteration `N`.
    pub microbatches: usize,
    /// Activation checkpointing: save only chunk inputs and recompute in
    /// backward. Split-backward strategies (ZB/WZB) force this off — the
    /// deferred W pass needs the full forward context.
    pub recompute: bool,
    /// Double-buffered weight movement (paper §4.3): the ring builders emit
    /// explicit [`OpKind::PrePost`]/[`OpKind::WaitReq`] pairs so round
    /// `t+1`'s weight/grad transfers are posted before round `t`'s compute
    /// and waited on only at the round boundary. Off falls back to blocking
    /// `Recv` ops at the top of each turn. Only affects the weight-passing
    /// ring schedules; results are bit-identical either way.
    pub overlap: bool,
    /// W-pass lag for the split-backward schedules: how many B passes may
    /// run ahead of their deferred W pass. `None` keeps the strategy
    /// default (2 for ZB1 — the ZB-H1 shape — and `P/2` for WZB1). Larger
    /// lags fill more bubble at the price of holding more B contexts; the
    /// autotuner sweeps this dimension. Ignored by non-split strategies.
    pub w_lag: Option<usize>,
    /// Chunk-count override for the collective strategies (FSDP, DDP):
    /// how many pieces the model is gathered/reduced in. `None` keeps the
    /// default of `P`. Coarser chunks amortize collective latency; finer
    /// chunks shrink the transient gathered-weights footprint. Ignored by
    /// the pipeline/ring strategies, whose chunk count is structurally `P`.
    pub chunks: Option<usize>,
    /// Group size for the hierarchical WeiPipe schedule: each group of
    /// `group` consecutive ranks runs its own interleaved weight ring
    /// (ideally one NVLink island per group), with gradients reconciled
    /// across groups through bridge ranks. Must divide `ranks` and be ≥ 2.
    /// `None` means one group of all `ranks` — the flat ring. Ignored by
    /// every other strategy.
    pub group: Option<usize>,
}

impl PipelineSpec {
    /// A spec with activation checkpointing on (the paper's long-context
    /// default), double-buffered weight movement enabled, and default
    /// W-lag / chunking.
    pub fn new(ranks: usize, microbatches: usize) -> Self {
        PipelineSpec {
            ranks,
            microbatches,
            recompute: true,
            overlap: true,
            w_lag: None,
            chunks: None,
            group: None,
        }
    }

    /// The same spec with activation checkpointing off.
    pub fn without_recompute(mut self) -> Self {
        self.recompute = false;
        self
    }

    /// Enable or disable double-buffered weight movement.
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Override the split-backward W-pass lag (ZB1 / WZB1).
    pub fn with_w_lag(mut self, lag: usize) -> Self {
        self.w_lag = Some(lag);
        self
    }

    /// Override the collective chunk count (FSDP / DDP).
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        self.chunks = Some(chunks);
        self
    }

    /// Set the hierarchical group size (WeiPipe-Hier).
    pub fn with_group(mut self, group: usize) -> Self {
        self.group = Some(group);
        self
    }
}

/// Build the schedule for `strategy` under `spec`.
///
/// # Panics
/// Panics when the strategy's divisibility constraints are violated
/// (weight-passing, FSDP and DDP need `N % P == 0`; WZB1 needs even `P`).
pub fn build(strategy: Strategy, spec: PipelineSpec) -> Schedule {
    match strategy {
        Strategy::WeiPipeNaive | Strategy::WeiPipeInterleave | Strategy::Wzb1 | Strategy::Wzb2 => {
            weipipe::build_ring(strategy, spec)
        }
        Strategy::WeiPipeHier => weipipe::build_hier(spec),
        Strategy::GPipe | Strategy::OneFOneB | Strategy::Zb1 | Strategy::Zb2 => {
            build_act_pipe(strategy, spec)
        }
        Strategy::Fsdp => build_fsdp(spec),
        Strategy::Ddp => build_ddp(spec),
    }
}

/// `x mod p` for possibly-negative `x`.
fn wrap(x: isize, p: usize) -> usize {
    x.rem_euclid(p as isize) as usize
}

/// The WeiPipe ring algebra (paper §4.2).
///
/// Two weight flows circulate rank `r → r+1` in lockstep, one ring hop per
/// *turn* `t`:
///
/// * **Forward flow** (`mb = `[`FLOW_FWD`]): at turn `t` rank `r` holds
///   chunk `wrap(t - r)`. Seeded so rank `r` starts with chunk
///   `(P - r) % P`; after `hf = (N/P + 1)·P` hops every chunk is back at
///   its owner `(P - c) % P`, which runs its optimizer update.
/// * **Backward flow** (`mb = `[`FLOW_BWD`]): at turn `t` rank `r` holds
///   chunk `wrap(r - offset - t)`, where `offset` is 1 for the interleaved
///   schedule (backward trails forward by one pipeline depth) and 2 for the
///   naive schedule (backward starts only after all forwards). The chunk's
///   gradient buffer `D` travels alongside and is drained into the ring on
///   every hop.
///
/// Rank `r` computes on whatever the flows deliver: microbatch groups are
/// assigned so `r` always works on microbatches `mb ≡ r (mod P)` — see
/// [`weipipe_mb_owner`] — which is what makes compute perfectly balanced
/// and the traffic independent of sequence length and microbatch size.
pub mod weipipe {
    use super::*;

    /// Sentinel microbatch index marking forward-flow weight messages.
    pub const FLOW_FWD: usize = NO_MB - 1;
    /// Sentinel microbatch index marking backward-flow weight messages.
    pub const FLOW_BWD: usize = NO_MB - 2;

    /// Which rank computes microbatch `mb` in a WeiPipe schedule.
    pub fn weipipe_mb_owner(ranks: usize, mb: usize) -> usize {
        mb % ranks
    }

    /// Shared ring builder for all four weight-passing schedules.
    pub(super) fn build_ring(strategy: Strategy, spec: PipelineSpec) -> Schedule {
        let p = spec.ranks;
        let n = spec.microbatches;
        assert!(p >= 2, "weight-passing ring needs at least 2 ranks");
        assert!(
            n.is_multiple_of(p),
            "WeiPipe needs microbatches ({n}) divisible by ranks ({p})"
        );
        let nl = n / p; // microbatch groups ("loops" of the ring)
        let naive = strategy == Strategy::WeiPipeNaive;
        let split = matches!(strategy, Strategy::Wzb1 | Strategy::Wzb2);
        if strategy == Strategy::Wzb1 {
            assert!(p.is_multiple_of(2), "WZB1 requires even P by construction");
        }
        let wzb1_lag = spec.w_lag.unwrap_or(p / 2);
        let offset = if naive { 2 } else { 1 };
        // Split-backward keeps full forward contexts for the W pass.
        let recompute = spec.recompute && !split;
        let ctx = if recompute {
            MemUnit::CkptInput
        } else {
            MemUnit::FwdCtx
        };

        // Ring horizon: forward flow runs hf hops (back to its owner);
        // backward flow runs hb hops (gradients land one rank short of the
        // owner and are delivered point-to-point at the end).
        let hf = (nl + 1) * p;
        let hb = if naive {
            2 * (nl + 1) * p - 3
        } else {
            (nl + 2) * p - 2
        };

        // Chunk held by rank r at turn t, per flow.
        let wf = |r: usize, t: usize| wrap(t as isize - r as isize, p);
        let wb = |r: usize, t: usize| wrap(r as isize - offset as isize - t as isize, p);

        let mut ops: Vec<Vec<Op>> = vec![Vec::new(); p];
        for (r, stream) in ops.iter_mut().enumerate() {
            let prev = wrap(r as isize - 1, p);
            let next = wrap(r as isize + 1, p);
            // WZB deferred W passes waiting to run on this rank.
            let mut w_queue: std::collections::VecDeque<(usize, usize)> =
                std::collections::VecDeque::new();
            for t in 0..=hb {
                let fwd_in = MsgKey {
                    kind: MsgKind::Weights,
                    chunk: wf(r, t),
                    mb: FLOW_FWD,
                    round: t.wrapping_sub(1),
                    src: prev,
                    dst: r,
                };
                let bwd_in = MsgKey {
                    kind: MsgKind::Weights,
                    chunk: wb(r, t),
                    mb: FLOW_BWD,
                    round: t.wrapping_sub(1),
                    src: prev,
                    dst: r,
                };
                let d_in = MsgKey {
                    kind: MsgKind::WeightGrads,
                    mb: NO_MB,
                    ..bwd_in
                };
                let fwd_out = MsgKey {
                    kind: MsgKind::Weights,
                    chunk: wf(r, t),
                    mb: FLOW_FWD,
                    round: t,
                    src: r,
                    dst: next,
                };
                let w_out = MsgKey {
                    kind: MsgKind::Weights,
                    chunk: wb(r, t),
                    mb: FLOW_BWD,
                    round: t,
                    src: r,
                    dst: next,
                };
                let d_out = MsgKey {
                    kind: MsgKind::WeightGrads,
                    mb: NO_MB,
                    ..w_out
                };
                // The seeded chunks of turn 0 depart with nothing to wait for.
                let seed_send = |key: MsgKey| Op {
                    kind: OpKind::Send(key),
                    needs: Vec::new(),
                    after_compute: false,
                    mem: Vec::new(),
                };

                // 1. This turn's ring arrivals. Blocking mode receives them
                //    all here, so each turn pays its transfers in sequence
                //    with its compute; overlap mode instead redeems requests
                //    pre-posted one turn earlier, waiting for each flow only
                //    at the point its payload is first consumed.
                if t >= 1 {
                    if spec.overlap {
                        if t <= hf {
                            stream.push(Op::wait_req(fwd_in));
                        }
                    } else {
                        if t <= hf {
                            stream.push(Op::recv(fwd_in));
                        }
                        stream.push(Op::recv(bwd_in));
                        stream.push(Op::recv(d_in));
                    }
                }

                // 1b. Overlap mode (§4.3 double buffering): the forward-flow
                //     chunk relays onward the moment it lands — its next hop
                //     streams while this rank computes — and the receive
                //     requests for round t+1 are posted before any of round
                //     t's compute starts.
                if spec.overlap {
                    if t < hf {
                        stream.push(if t == 0 {
                            seed_send(fwd_out)
                        } else {
                            Op::forward_send(fwd_out, fwd_in)
                        });
                    }
                    if t < hf {
                        stream.push(Op::pre_post(MsgKey {
                            chunk: wf(r, t + 1),
                            round: t,
                            ..fwd_in
                        }));
                    }
                    if t < hb {
                        stream.push(Op::pre_post(MsgKey {
                            chunk: wb(r, t + 1),
                            round: t,
                            ..bwd_in
                        }));
                        stream.push(Op::pre_post(MsgKey {
                            chunk: wb(r, t + 1),
                            round: t,
                            ..d_in
                        }));
                    }
                }

                // 2. Forward compute: group g of this rank's microbatches
                //    meets chunk c on turn t = r + g·P + c.
                if t >= r {
                    let k = t - r;
                    if k < nl * p {
                        let mb = (k / p) * p + r;
                        let chunk = k % p;
                        debug_assert_eq!(chunk, wf(r, t));
                        let mut op = Op::compute(OpKind::Fwd { mb, chunk }).mem(ctx, 1);
                        if t >= 1 {
                            op = op.needs(fwd_in);
                        }
                        stream.push(op);
                    }
                }

                // 2b. Overlap mode: the backward flow (weights + gradient
                //     accumulator) is waited on only now, after the forward
                //     compute it was hiding under, and the weight half
                //     relays onward before the local backward uses it.
                //     (The gradient half cannot leave yet — the backward
                //     below still accumulates into it.)
                if spec.overlap {
                    if t >= 1 {
                        stream.push(Op::wait_req(bwd_in));
                        stream.push(Op::wait_req(d_in));
                    }
                    if t < hb {
                        stream.push(if t == 0 {
                            seed_send(w_out)
                        } else {
                            Op::forward_send(w_out, bwd_in)
                        });
                    }
                }

                // 3. Backward compute on the trailing flow.
                let bk = if naive {
                    (t as isize) - (r as isize + ((nl + 1) * p) as isize - 1)
                } else {
                    (t as isize) - (r as isize + p as isize)
                };
                if bk >= 0 && (bk as usize) < nl * p {
                    let k = bk as usize;
                    let mb = (k / p) * p + r;
                    let chunk = p - 1 - (k % p);
                    debug_assert_eq!(chunk, wb(r, t));
                    let kind = if split {
                        OpKind::BwdData { mb, chunk }
                    } else {
                        OpKind::BwdFull { mb, chunk }
                    };
                    let mut op = Op::compute(kind).needs(bwd_in);
                    op = if split {
                        op.mem(MemUnit::BCtx, 1)
                    } else {
                        op.mem(ctx, -1)
                    };
                    stream.push(op);
                    if split {
                        w_queue.push_back((mb, chunk));
                        // WZB1 bounds in-flight B contexts (default P/2,
                        // tunable via `w_lag`); WZB2 defers every W pass to
                        // the end of the iteration.
                        if strategy == Strategy::Wzb1 && w_queue.len() > wzb1_lag {
                            let (wmb, wchunk) = w_queue.pop_front().expect("non-empty");
                            stream.push(
                                Op::compute(OpKind::BwdWeight {
                                    mb: wmb,
                                    chunk: wchunk,
                                })
                                .mem(MemUnit::FwdCtx, -1)
                                .mem(MemUnit::BCtx, -1),
                            );
                        }
                    }
                }

                // 4. Remaining ring departures for this turn. Blocking mode
                //    relays both weight flows here — round-synchronous, after
                //    this rank's compute for the turn, which is what gives
                //    the ring its serialized compute+comm cost. Overlap mode
                //    already relayed the weights above; only the gradient
                //    chunk departs here, in both modes, because it must carry
                //    the local backward's contribution (every variant).
                if !spec.overlap && t < hf {
                    if t == 0 {
                        stream.push(seed_send(fwd_out));
                    } else {
                        stream.push(Op::send(fwd_out).needs(fwd_in));
                    }
                }
                if t < hb {
                    if !spec.overlap {
                        if t == 0 {
                            stream.push(seed_send(w_out));
                        } else {
                            // Backward weights relay one hop per round as
                            // well; what the interleaved schedule removes vs
                            // naive is the second full circulation (hb is
                            // ~half as many rounds), not the per-hop pacing
                            // (§4.2.2).
                            stream.push(Op::send(w_out).needs(bwd_in));
                        }
                    }
                    let mut op = Op::send(d_out);
                    if t >= 1 {
                        op = op.needs(d_in);
                    }
                    stream.push(op);
                }
            }

            // WZB2: flush every deferred W pass.
            for (wmb, wchunk) in w_queue.drain(..) {
                stream.push(
                    Op::compute(OpKind::BwdWeight {
                        mb: wmb,
                        chunk: wchunk,
                    })
                    .mem(MemUnit::FwdCtx, -1)
                    .mem(MemUnit::BCtx, -1),
                );
            }

            // Gradient delivery: after hb hops, chunk c's gradients sit at
            // rank (c - 1) % P; ship them to the updating rank.
            let holder = |c: usize| wrap(c as isize + offset as isize + hb as isize, p);
            let updater = |c: usize| {
                if strategy == Strategy::Wzb2 {
                    p - 1 // WZB2 parks all optimizer state on the last rank
                } else {
                    wrap(-(c as isize), p)
                }
            };
            let d_at_hb = |c: usize, at: usize| MsgKey {
                kind: MsgKind::WeightGrads,
                chunk: c,
                mb: NO_MB,
                round: hb - 1,
                src: wrap(at as isize - 1, p),
                dst: at,
            };
            for c in 0..p {
                if holder(c) == r && updater(c) != r {
                    debug_assert_eq!(holder(c), wrap(c as isize - 1, p));
                    stream.push(
                        Op::send(MsgKey {
                            kind: MsgKind::WeightGrads,
                            chunk: c,
                            mb: NO_MB,
                            round: hb,
                            src: r,
                            dst: updater(c),
                        })
                        .needs(d_at_hb(c, r)),
                    );
                }
            }
            for c in 0..p {
                if updater(c) != r {
                    continue;
                }
                let grads_ready = if holder(c) == r {
                    d_at_hb(c, r)
                } else {
                    let delivery = MsgKey {
                        kind: MsgKind::WeightGrads,
                        chunk: c,
                        mb: NO_MB,
                        round: hb,
                        src: holder(c),
                        dst: r,
                    };
                    stream.push(Op::recv(delivery));
                    delivery
                };
                let mut op = Op::compute(OpKind::Update { chunk: c }).needs(grads_ready);
                if strategy != Strategy::Wzb2 {
                    // The forward flow returned this chunk's weights home on
                    // its final hop; the update mutates that buffer.
                    op = op.needs(MsgKey {
                        kind: MsgKind::Weights,
                        chunk: c,
                        mb: FLOW_FWD,
                        round: hf - 1,
                        src: prev,
                        dst: r,
                    });
                }
                stream.push(op);
            }
        }

        Schedule {
            strategy,
            ranks: p,
            chunks: p,
            microbatches: n,
            ops,
            initial_holder: (0..p).map(|c| (p - c) % p).collect(),
            recompute,
        }
    }

    /// Hierarchical (TawPipe-style) grouped WeiPipe.
    ///
    /// The world's `P` ranks are split into `P / g` groups of `g`
    /// consecutive ranks — ideally one NVLink island per group. Each group
    /// runs the interleaved flat ring of [`build_ring`] over a **full model
    /// replica sharded `g` ways** (intra-group weight sharding: `chunks = g`,
    /// so every weight-flow hop rides a fast intra-group link), processing
    /// the microbatches whose owner rank lives in the group. The only
    /// traffic that crosses groups is the end-of-iteration gradient
    /// reconciliation:
    ///
    /// 1. **Gather** — each per-chunk updater hands its accumulated
    ///    gradient chunk to the group's designated *bridge rank* (the last
    ///    rank of the group, elected to match [`build_ring`]'s outgoing ring
    ///    hop) over intra-group links.
    /// 2. **Circulate** — per chunk, the bridges ring-**reduce** the `G`
    ///    partial gradients to the chunk's owner bridge (`G − 1` hops
    ///    carrying running partial sums), then ring-**broadcast** the full
    ///    sum back around (`G − 1` more hops) — the classic all-reduce
    ///    message count, `2 · (G − 1)` hops per chunk and `2 · (G − 1) · g`
    ///    messages in total. These are the *only* sends whose endpoints sit
    ///    in different groups.
    /// 3. **Fan out** — each bridge broadcasts the reduced gradients back to
    ///    its group's per-chunk updaters over intra-group links, and the
    ///    updaters run their optimizer step against the group replica.
    ///
    /// Versus the flat ring — which pushes two weight flows plus the grad
    /// chunk across every node boundary on every one of its `~(N/P + 2)·P`
    /// turns — cross-node bytes per iteration shrink by roughly the group
    /// size, at the cost of each rank holding `1/g` of the model instead of
    /// `1/P` (the replica memory TawPipe trades for slow-link traffic).
    ///
    /// `group == None` (or `group == P`) degenerates to a single flat ring.
    pub(super) fn build_hier(spec: PipelineSpec) -> Schedule {
        let p = spec.ranks;
        let n = spec.microbatches;
        let g = spec.group.unwrap_or(p);
        assert!(g >= 2, "hierarchical groups need at least 2 ranks, got {g}");
        assert!(
            p.is_multiple_of(g),
            "group size ({g}) must divide ranks ({p})"
        );
        assert!(
            n.is_multiple_of(p),
            "WeiPipe-Hier needs microbatches ({n}) divisible by ranks ({p})"
        );
        let groups = p / g;
        let n_local = n / groups;

        // Each group runs the same interleaved local ring; build it once and
        // splice `groups` remapped copies into the world schedule.
        let local = build_ring(
            Strategy::WeiPipeInterleave,
            PipelineSpec {
                ranks: g,
                microbatches: n_local,
                w_lag: None,
                chunks: None,
                group: None,
                ..spec
            },
        );

        // Group j's local microbatch m is global microbatch
        // `(m % g) + j·g + (m / g)·P`: its owner rank is `j·g + (m % g)`,
        // so global ownership (`mb % P`) agrees with the local ring algebra
        // (`m % g`) and the groups partition `0..N` exactly.
        let remap_mb = |mb: usize, base: usize| -> usize {
            if mb < n_local {
                (mb % g) + base + (mb / g) * p
            } else {
                mb // FLOW_FWD / FLOW_BWD / NO_MB sentinels
            }
        };
        let remap_key = |k: &MsgKey, base: usize| MsgKey {
            kind: k.kind,
            chunk: k.chunk,
            mb: remap_mb(k.mb, base),
            round: k.round,
            src: k.src + base,
            dst: k.dst + base,
        };
        let remap_op = |op: &Op, base: usize| -> Op {
            let kind = match op.kind {
                OpKind::Fwd { mb, chunk } => OpKind::Fwd {
                    mb: remap_mb(mb, base),
                    chunk,
                },
                OpKind::BwdFull { mb, chunk } => OpKind::BwdFull {
                    mb: remap_mb(mb, base),
                    chunk,
                },
                OpKind::BwdData { mb, chunk } => OpKind::BwdData {
                    mb: remap_mb(mb, base),
                    chunk,
                },
                OpKind::BwdWeight { mb, chunk } => OpKind::BwdWeight {
                    mb: remap_mb(mb, base),
                    chunk,
                },
                OpKind::Send(ref k) => OpKind::Send(remap_key(k, base)),
                OpKind::Recv(ref k) => OpKind::Recv(remap_key(k, base)),
                OpKind::PrePost(ref k) => OpKind::PrePost(remap_key(k, base)),
                OpKind::WaitReq(ref k) => OpKind::WaitReq(remap_key(k, base)),
                ref other => other.clone(), // Update; collectives never occur
            };
            Op {
                kind,
                needs: op.needs.iter().map(|k| remap_key(k, base)).collect(),
                after_compute: op.after_compute,
                mem: op.mem.clone(),
            }
        };

        let mut ops: Vec<Vec<Op>> = vec![Vec::new(); p];
        // Per group, per chunk: the rank whose optimizer step covers the
        // chunk, its local-gradient dependency, and its returned-weights
        // dependency — the Update ops themselves are deferred until after
        // cross-group reconciliation.
        let mut info: Vec<Vec<(usize, MsgKey, Option<MsgKey>)>> = Vec::new();
        for j in 0..groups {
            let base = j * g;
            let mut chunk_info = vec![None; g];
            for (rl, stream) in local.ops.iter().enumerate() {
                let r = base + rl;
                for op in stream {
                    let mapped = remap_op(op, base);
                    if groups > 1 {
                        if let OpKind::Update { chunk } = mapped.kind {
                            let grad = mapped
                                .needs
                                .iter()
                                .copied()
                                .find(|k| k.kind == MsgKind::WeightGrads)
                                .expect("ring update depends on its gradients");
                            let weights = mapped
                                .needs
                                .iter()
                                .copied()
                                .find(|k| k.kind == MsgKind::Weights);
                            chunk_info[chunk] = Some((r, grad, weights));
                            continue;
                        }
                    }
                    ops[r].push(mapped);
                }
            }
            info.push(if groups > 1 {
                chunk_info
                    .into_iter()
                    .map(|c| c.expect("flat ring emits one Update per chunk"))
                    .collect()
            } else {
                Vec::new()
            });
        }

        if groups > 1 {
            // Local backward horizon — the last round number the spliced
            // rings use; reconciliation rounds start above it.
            let hb = (n_local / g + 2) * g - 2;
            let bridge = |j: usize| j * g + g - 1;
            let key = |chunk: usize, round: usize, src: usize, dst: usize| MsgKey {
                kind: MsgKind::WeightGrads,
                chunk,
                mb: NO_MB,
                round,
                src,
                dst,
            };
            let r_gather = hb + 1;

            // 1. Gather at the bridge (intra-group).
            for (j, group_info) in info.iter().enumerate() {
                let b = bridge(j);
                for (c, &(r, grad, _)) in group_info.iter().enumerate() {
                    if r != b {
                        ops[r].push(Op::send(key(c, r_gather, r, b)).needs(grad));
                        ops[b].push(Op::recv(key(c, r_gather, r, b)));
                    }
                }
            }

            // Chunk-c gradients as seen by the bridge of group `j`: its own
            // contribution if it is the updater, else the gathered copy.
            let local_grad = |j: usize, c: usize| -> MsgKey {
                let (u, grad, _) = info[j][c];
                if u == bridge(j) {
                    grad
                } else {
                    key(c, r_gather, u, bridge(j))
                }
            };

            // 2. Ring-reduce each chunk to its owner bridge, then ring-
            //    broadcast the sum back — `2·(G−1)` bridge hops per chunk,
            //    the classic all-reduce byte count `2·(G−1)·M` in total
            //    (a store-and-forward all-gather would cost `G·(G−1)·M`
            //    and forfeit most of the hierarchy's traffic win). Chunk
            //    ownership rotates (`c % G`) so the hop load balances
            //    across the bridge ring. Reduce hop `s` carries the
            //    partial sum of groups `o+1..=o+1+s`; broadcast hops carry
            //    the full sum.
            //    Hop descriptor: (round, sender group, receiver group,
            //    chunk, payload dependencies).
            let mut hops: Vec<(usize, usize, usize, usize, Vec<MsgKey>)> = Vec::new();
            for c in 0..g {
                let o = c % groups; // owner position on the bridge ring
                for s in 0..groups - 1 {
                    let round = hb + 2 + s;
                    let sj = (o + 1 + s) % groups;
                    let rj = (o + 2 + s) % groups;
                    let mut needs = vec![local_grad(sj, c)];
                    if s > 0 {
                        let prev = (o + s) % groups;
                        needs.push(key(c, round - 1, bridge(prev), bridge(sj)));
                    }
                    hops.push((round, sj, rj, c, needs));
                }
                for t in 0..groups - 1 {
                    let round = hb + groups + 1 + t;
                    let sj = (o + t) % groups;
                    let rj = (o + 1 + t) % groups;
                    let needs = if t == 0 {
                        // The full sum materializes at the owner: the last
                        // partial-sum arrival plus its own contribution.
                        let last = (o + groups - 1) % groups;
                        vec![
                            key(c, hb + groups, bridge(last), bridge(o)),
                            local_grad(o, c),
                        ]
                    } else {
                        vec![key(c, round - 1, bridge((o + t - 1) % groups), bridge(sj))]
                    };
                    hops.push((round, sj, rj, c, needs));
                }
            }
            // Emit round-by-round, sends before recvs per bridge, so every
            // stream's strict in-order execution finds its dependencies
            // already satisfied.
            hops.sort_by_key(|&(round, sj, _, c, _)| (round, sj, c));
            for round in hb + 2..=hb + 2 * groups - 1 {
                for j in 0..groups {
                    for (r, sj, rj, c, needs) in hops.iter().filter(|h| h.0 == round) {
                        if *sj == j {
                            let mut send = Op::send(key(*c, *r, bridge(*sj), bridge(*rj)));
                            for k in needs {
                                send = send.needs(*k);
                            }
                            ops[bridge(j)].push(send);
                        }
                    }
                    for (r, sj, rj, c, _) in hops.iter().filter(|h| h.0 == round) {
                        if *rj == j {
                            ops[bridge(j)].push(Op::recv(key(*c, *r, bridge(*sj), bridge(*rj))));
                        }
                    }
                }
            }

            // Dependencies that pin the full chunk-c sum at group j's
            // bridge after the ring phases.
            let full_sum = |j: usize, c: usize| -> Vec<MsgKey> {
                let o = c % groups;
                if j == o {
                    let last = (o + groups - 1) % groups;
                    vec![
                        key(c, hb + groups, bridge(last), bridge(o)),
                        local_grad(o, c),
                    ]
                } else {
                    let t = (j + groups - o - 1) % groups; // j == o+1+t
                    vec![key(
                        c,
                        hb + groups + 1 + t,
                        bridge((o + t) % groups),
                        bridge(j),
                    )]
                }
            };

            // 3. Fan the reduced gradients back out (intra-group) and run
            //    the deferred optimizer steps.
            let r_fan = hb + 2 * groups;
            for (j, group_info) in info.iter().enumerate() {
                let b = bridge(j);
                for (c, &(u, _, weights)) in group_info.iter().enumerate() {
                    if u == b {
                        let mut op = Op::compute(OpKind::Update { chunk: c });
                        for k in full_sum(j, c) {
                            op = op.needs(k);
                        }
                        if let Some(w) = weights {
                            op = op.needs(w);
                        }
                        ops[b].push(op);
                    } else {
                        let fo = key(c, r_fan, b, u);
                        let mut send = Op::send(fo);
                        for k in full_sum(j, c) {
                            send = send.needs(k);
                        }
                        ops[b].push(send);
                        ops[u].push(Op::recv(fo));
                        let mut op = Op::compute(OpKind::Update { chunk: c }).needs(fo);
                        if let Some(w) = weights {
                            op = op.needs(w);
                        }
                        ops[u].push(op);
                    }
                }
            }
        }

        Schedule {
            strategy: Strategy::WeiPipeHier,
            ranks: p,
            chunks: g,
            microbatches: n,
            ops,
            // Group 0's replica owners; groups j > 0 hold the same chunks at
            // `j·g +` the same offsets.
            initial_holder: local.initial_holder,
            recompute: local.recompute,
        }
    }
}

/// Activation-passing stage pipelines: rank `r` owns chunk `r` for the
/// whole run; microbatches flow down the stages as activations and back up
/// as activation gradients.
fn build_act_pipe(strategy: Strategy, spec: PipelineSpec) -> Schedule {
    let p = spec.ranks;
    let n = spec.microbatches;
    assert!(p >= 1, "need at least one stage");
    let split = matches!(strategy, Strategy::Zb1 | Strategy::Zb2);
    let recompute = spec.recompute && !split;
    let ctx = if recompute {
        MemUnit::CkptInput
    } else {
        MemUnit::FwdCtx
    };

    let act_in = |r: usize, mb: usize| MsgKey {
        kind: MsgKind::Act,
        chunk: r,
        mb,
        round: 0,
        src: r - 1,
        dst: r,
    };
    let ag_in = |r: usize, mb: usize| MsgKey {
        kind: MsgKind::ActGrad,
        chunk: r,
        mb,
        round: 0,
        src: r + 1,
        dst: r,
    };

    let mut ops: Vec<Vec<Op>> = vec![Vec::new(); p];
    for (r, stream) in ops.iter_mut().enumerate() {
        let push_fwd = |stream: &mut Vec<Op>, mb: usize| {
            if r > 0 {
                stream.push(Op::recv(act_in(r, mb)).mem(MemUnit::ActBoundary, 1));
            }
            let mut op = Op::compute(OpKind::Fwd { mb, chunk: r }).mem(ctx, 1);
            if r > 0 {
                op = op.needs(act_in(r, mb)).mem(MemUnit::ActBoundary, -1);
            }
            if r < p - 1 {
                op = op.mem(MemUnit::ActBoundary, 1);
            }
            stream.push(op);
            if r < p - 1 {
                stream.push(Op::send(act_in(r + 1, mb)).mem(MemUnit::ActBoundary, -1));
            }
        };
        let push_bwd = |stream: &mut Vec<Op>, mb: usize| {
            if r < p - 1 {
                stream.push(Op::recv(ag_in(r, mb)).mem(MemUnit::ActGradBoundary, 1));
            }
            let kind = if split {
                OpKind::BwdData { mb, chunk: r }
            } else {
                OpKind::BwdFull { mb, chunk: r }
            };
            let mut op = Op::compute(kind);
            if r < p - 1 {
                op = op.needs(ag_in(r, mb)).mem(MemUnit::ActGradBoundary, -1);
            }
            op = if split {
                op.mem(MemUnit::BCtx, 1)
            } else {
                op.mem(ctx, -1)
            };
            if r > 0 {
                op = op.mem(MemUnit::ActGradBoundary, 1);
            }
            stream.push(op);
            if r > 0 {
                stream.push(Op::send(ag_in(r - 1, mb)).mem(MemUnit::ActGradBoundary, -1));
            }
        };
        let push_w = |stream: &mut Vec<Op>, mb: usize| {
            stream.push(
                Op::compute(OpKind::BwdWeight { mb, chunk: r })
                    .mem(MemUnit::FwdCtx, -1)
                    .mem(MemUnit::BCtx, -1),
            );
        };

        match strategy {
            Strategy::GPipe => {
                for mb in 0..n {
                    push_fwd(stream, mb);
                }
                for mb in 0..n {
                    push_bwd(stream, mb);
                }
            }
            Strategy::OneFOneB => {
                let warm = (p - 1 - r).min(n);
                for mb in 0..warm {
                    push_fwd(stream, mb);
                }
                for i in 0..n - warm {
                    push_fwd(stream, warm + i);
                    push_bwd(stream, i);
                }
                for mb in n - warm..n {
                    push_bwd(stream, mb);
                }
            }
            Strategy::Zb1 => {
                // 1F1B shape with W passes lagging their B passes by a
                // couple of slots (ZB-H1): the activation-gradient send
                // leaves after only the B-pass latency, and the deferred W
                // passes fill what would otherwise be bubble — at the price
                // of holding the full forward ctx and B ctx of the lagged
                // microbatches, the memory blow-up Table 2 charges ZB for.
                let w_lag = spec.w_lag.unwrap_or(2);
                let warm = (p - 1 - r).min(n);
                let mut w_queue = std::collections::VecDeque::new();
                for mb in 0..warm {
                    push_fwd(stream, mb);
                }
                for i in 0..n - warm {
                    push_fwd(stream, warm + i);
                    push_bwd(stream, i);
                    w_queue.push_back(i);
                    if w_queue.len() > w_lag {
                        push_w(stream, w_queue.pop_front().expect("non-empty"));
                    }
                }
                for mb in n - warm..n {
                    push_bwd(stream, mb);
                    w_queue.push_back(mb);
                    if w_queue.len() > w_lag {
                        push_w(stream, w_queue.pop_front().expect("non-empty"));
                    }
                }
                for mb in w_queue.drain(..) {
                    push_w(stream, mb);
                }
            }
            Strategy::Zb2 => {
                // Deeper warmup fills the bubble with extra forwards; every
                // W pass is deferred to the end of the iteration.
                let warm = (2 * (p - r) - 1).min(n);
                for mb in 0..warm {
                    push_fwd(stream, mb);
                }
                for i in 0..n - warm {
                    push_fwd(stream, warm + i);
                    push_bwd(stream, i);
                }
                for mb in n - warm..n {
                    push_bwd(stream, mb);
                }
                for mb in 0..n {
                    push_w(stream, mb);
                }
            }
            _ => unreachable!("not an activation pipeline"),
        }
        stream.push(Op::compute(OpKind::Update { chunk: r }));
    }

    Schedule {
        strategy,
        ranks: p,
        chunks: p,
        microbatches: n,
        ops,
        initial_holder: (0..p).collect(),
        recompute,
    }
}

/// FSDP (ZeRO-3): every rank holds a 1/P shard of every chunk and runs its
/// 1/P of the microbatches as plain data parallelism — all-gathering each
/// chunk's full weights just before use (once for the forward, again for
/// the backward) and freeing them right after, then reduce-scattering that
/// microbatch's gradient chunk back to shards. This per-microbatch
/// re-gather is what keeps sharded memory flat and what multiplies ZeRO-3's
/// communication volume by the gradient-accumulation depth — the cost the
/// paper's slow-interconnect columns expose (§6.1).
fn build_fsdp(spec: PipelineSpec) -> Schedule {
    let p = spec.ranks;
    let n = spec.microbatches;
    assert!(
        n.is_multiple_of(p),
        "FSDP needs microbatches ({n}) divisible by ranks ({p})"
    );
    let chunks = spec.chunks.unwrap_or(p);
    assert!(chunks >= 1, "FSDP needs at least one chunk");
    let ctx = if spec.recompute {
        MemUnit::CkptInput
    } else {
        MemUnit::FwdCtx
    };
    let pseudo = |kind: MsgKind, c: usize, round: usize, r: usize| MsgKey {
        kind,
        chunk: c,
        mb: NO_MB,
        round,
        src: r,
        dst: r,
    };

    let local = n / p;
    let mut ops: Vec<Vec<Op>> = vec![Vec::new(); p];
    for (r, stream) in ops.iter_mut().enumerate() {
        for i in 0..local {
            let mb = i * p + r;
            for c in 0..chunks {
                stream.push(
                    Op::compute_collective(OpKind::AllGatherW {
                        chunk: c,
                        round: 2 * i,
                    })
                    .mem(MemUnit::WeightChunk, 1),
                );
                stream.push(
                    Op::compute(OpKind::Fwd { mb, chunk: c })
                        .needs(pseudo(MsgKind::Weights, c, 2 * i, r))
                        .mem(ctx, 1)
                        .mem(MemUnit::WeightChunk, -1),
                );
            }
            for c in (0..chunks).rev() {
                stream.push(
                    Op::compute_collective(OpKind::AllGatherW {
                        chunk: c,
                        round: 2 * i + 1,
                    })
                    .mem(MemUnit::WeightChunk, 1),
                );
                stream.push(
                    Op::compute(OpKind::BwdFull { mb, chunk: c })
                        .needs(pseudo(MsgKind::Weights, c, 2 * i + 1, r))
                        .mem(ctx, -1)
                        .mem(MemUnit::WeightChunk, -1)
                        .mem(MemUnit::GradChunk, 1),
                );
                stream.push(
                    Op::compute_collective(OpKind::ReduceScatterD { chunk: c, round: i })
                        .mem(MemUnit::GradChunk, -1),
                );
            }
        }
        for c in 0..chunks {
            stream.push(Op::compute(OpKind::Update { chunk: c }).needs(pseudo(
                MsgKind::WeightGrads,
                c,
                local - 1,
                r,
            )));
        }
    }

    Schedule {
        strategy: Strategy::Fsdp,
        ranks: p,
        chunks,
        microbatches: n,
        ops,
        initial_holder: (0..chunks).map(|c| c % p).collect(),
        recompute: spec.recompute,
    }
}

/// DDP: the model is replicated; each rank trains its 1/P of the
/// microbatches locally and all-reduces gradients before a replicated
/// update.
fn build_ddp(spec: PipelineSpec) -> Schedule {
    let p = spec.ranks;
    let n = spec.microbatches;
    assert!(
        n.is_multiple_of(p),
        "DDP needs microbatches ({n}) divisible by ranks ({p})"
    );
    let chunks = spec.chunks.unwrap_or(p);
    assert!(chunks >= 1, "DDP needs at least one chunk");
    let ctx = if spec.recompute {
        MemUnit::CkptInput
    } else {
        MemUnit::FwdCtx
    };

    let mut ops: Vec<Vec<Op>> = vec![Vec::new(); p];
    for (r, stream) in ops.iter_mut().enumerate() {
        for mb in (r..n).step_by(p) {
            for c in 0..chunks {
                stream.push(Op::compute(OpKind::Fwd { mb, chunk: c }).mem(ctx, 1));
            }
            for c in (0..chunks).rev() {
                stream.push(Op::compute(OpKind::BwdFull { mb, chunk: c }).mem(ctx, -1));
            }
        }
        for c in 0..chunks {
            stream.push(Op::compute_collective(OpKind::AllReduceD {
                chunk: c,
                round: 0,
            }));
        }
        for c in 0..chunks {
            stream.push(Op::compute(OpKind::Update { chunk: c }).needs(MsgKey {
                kind: MsgKind::WeightGrads,
                chunk: c,
                mb: NO_MB,
                round: 0,
                src: r,
                dst: r,
            }));
        }
    }

    Schedule {
        strategy: Strategy::Ddp,
        ranks: p,
        chunks,
        microbatches: n,
        ops,
        initial_holder: (0..chunks).map(|c| c % p).collect(),
        recompute: spec.recompute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_send_census_matches_ring_algebra() {
        // P=4, N=8 (nl=2): hf=12 fwd hops, hb=14 bwd/grad hops per rank,
        // plus one end-of-iteration gradient delivery per rank.
        let s = build(Strategy::WeiPipeInterleave, PipelineSpec::new(4, 8));
        let st = s.stats();
        assert_eq!(st.sends, 4 * (12 + 14 + 14) + 4);
        assert_eq!(st.recvs, st.sends);
    }

    #[test]
    fn overlap_emits_prepost_wait_pairs_without_changing_traffic() {
        use std::collections::HashSet;
        for strat in [Strategy::WeiPipeNaive, Strategy::WeiPipeInterleave] {
            let spec = PipelineSpec::new(4, 8);
            let blocking = build(strat, spec.with_overlap(false));
            let overlapped = build(strat, spec.with_overlap(true));
            let (bs, os) = (blocking.stats(), overlapped.stats());
            // Same messages on the wire either way; only the posting style
            // differs (Recv vs PrePost+WaitReq).
            assert_eq!(bs.sends, os.sends, "{strat:?}");
            assert_eq!(bs.recvs, os.recvs, "{strat:?}");
            assert_eq!(bs.waits, 0, "{strat:?}");
            assert!(os.waits > 0, "{strat:?}");
            // Every wait redeems a pre-post issued earlier on the same rank.
            for ops in &overlapped.ops {
                let mut posted: HashSet<MsgKey> = HashSet::new();
                for op in ops {
                    match op.kind {
                        OpKind::PrePost(k) => {
                            assert!(posted.insert(k), "{strat:?}: double post {k:?}");
                        }
                        OpKind::WaitReq(k) => {
                            assert!(posted.remove(&k), "{strat:?}: wait before post {k:?}");
                        }
                        _ => {}
                    }
                }
                assert!(posted.is_empty(), "{strat:?}: unredeemed pre-posts");
            }
        }
    }

    #[test]
    fn weipipe_updates_land_on_the_weight_owner() {
        let s = build(Strategy::WeiPipeInterleave, PipelineSpec::new(4, 8));
        for (r, op) in s.iter_ops() {
            if let OpKind::Update { chunk } = op.kind {
                assert_eq!(r, (4 - chunk) % 4, "chunk {chunk} updated off-owner");
                assert_eq!(s.initial_holder[chunk], r);
            }
        }
    }

    #[test]
    fn microbatch_ownership_is_mod_p() {
        for strat in [Strategy::WeiPipeNaive, Strategy::WeiPipeInterleave] {
            let s = build(strat, PipelineSpec::new(4, 8));
            for (r, op) in s.iter_ops() {
                if let OpKind::Fwd { mb, .. }
                | OpKind::BwdFull { mb, .. }
                | OpKind::BwdData { mb, .. }
                | OpKind::BwdWeight { mb, .. } = op.kind
                {
                    assert_eq!(weipipe_mb_owner(4, mb), r);
                }
            }
        }
    }

    #[test]
    fn split_strategies_force_recompute_off() {
        for strat in [Strategy::Zb1, Strategy::Zb2, Strategy::Wzb1, Strategy::Wzb2] {
            let s = build(strat, PipelineSpec::new(4, 8));
            assert!(!s.recompute, "{strat:?} cannot checkpoint");
            let st = s.stats();
            assert_eq!(st.bwd_full, 0);
            assert_eq!(st.bwd_data, st.bwd_weight);
        }
    }

    #[test]
    fn fsdp_and_ddp_are_collective_only() {
        for strat in [Strategy::Fsdp, Strategy::Ddp] {
            let s = build(strat, PipelineSpec::new(4, 8));
            let st = s.stats();
            assert_eq!(st.sends, 0, "{strat:?}");
            assert_eq!(st.recvs, 0, "{strat:?}");
            assert!(st.collectives > 0, "{strat:?}");
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn weipipe_rejects_ragged_microbatches() {
        build(Strategy::WeiPipeInterleave, PipelineSpec::new(4, 6));
    }

    #[test]
    fn w_lag_override_shifts_w_passes_without_changing_census() {
        let default = build(Strategy::Zb1, PipelineSpec::new(4, 8));
        let deep = build(Strategy::Zb1, PipelineSpec::new(4, 8).with_w_lag(5));
        crate::validate(&deep).expect("zb1 lag=5 is valid");
        let (ds, xs) = (default.stats(), deep.stats());
        assert_eq!(
            ds.bwd_weight, xs.bwd_weight,
            "lag moves W passes, never drops them"
        );
        assert_ne!(
            default.ops[0]
                .iter()
                .map(|o| format!("{:?}", o.kind))
                .collect::<Vec<_>>(),
            deep.ops[0]
                .iter()
                .map(|o| format!("{:?}", o.kind))
                .collect::<Vec<_>>(),
        );
        let tight = build(Strategy::Wzb1, PipelineSpec::new(4, 8).with_w_lag(1));
        crate::validate(&tight).expect("wzb1 lag=1 is valid");
        assert_eq!(tight.stats().bwd_weight, tight.stats().bwd_data);
    }

    #[test]
    fn chunk_override_reshapes_collective_strategies() {
        for chunks in [1usize, 2, 8] {
            for strat in [Strategy::Fsdp, Strategy::Ddp] {
                let s = build(strat, PipelineSpec::new(4, 8).with_chunks(chunks));
                assert_eq!(s.chunks, chunks, "{strat:?}");
                assert_eq!(s.initial_holder.len(), chunks, "{strat:?}");
                crate::validate(&s).unwrap_or_else(|e| panic!("{strat:?} chunks={chunks}: {e}"));
            }
        }
        // The default stays the bit-identical P-chunk schedule.
        let d = build(Strategy::Fsdp, PipelineSpec::new(4, 8));
        assert_eq!(d.chunks, 4);
    }

    #[test]
    fn hier_single_group_degenerates_to_flat_interleave() {
        let flat = build(Strategy::WeiPipeInterleave, PipelineSpec::new(4, 8));
        // No group (or group == P) means one ring spanning the world: the
        // exact interleave schedule under a different strategy tag.
        for spec in [
            PipelineSpec::new(4, 8),
            PipelineSpec::new(4, 8).with_group(4),
        ] {
            let hier = build(Strategy::WeiPipeHier, spec);
            assert_eq!(hier.strategy, Strategy::WeiPipeHier);
            assert_eq!(hier.chunks, 4);
            assert_eq!(hier.ops, flat.ops);
            assert_eq!(hier.initial_holder, flat.initial_holder);
        }
    }

    #[test]
    fn hier_grouped_schedule_validates_and_partitions_microbatches() {
        for (p, g, n) in [(4, 2, 8), (8, 4, 16), (8, 2, 8), (6, 3, 12)] {
            let s = build(Strategy::WeiPipeHier, PipelineSpec::new(p, n).with_group(g));
            crate::validate(&s).unwrap_or_else(|e| panic!("p={p} g={g} n={n}: {e}"));
            assert_eq!(s.chunks, g);
            // Microbatch ownership stays `mb % P` after the group remap, so
            // each group's ring trains exactly its own slice of the batch.
            let mut updates = vec![0usize; g];
            for (r, op) in s.iter_ops() {
                match op.kind {
                    OpKind::Fwd { mb, .. }
                    | OpKind::BwdFull { mb, .. }
                    | OpKind::BwdData { mb, .. }
                    | OpKind::BwdWeight { mb, .. } => assert_eq!(mb % p, r, "p={p} g={g}"),
                    OpKind::Update { chunk } => updates[chunk] += 1,
                    _ => {}
                }
            }
            // One optimizer step per chunk per replica group.
            assert!(
                updates.iter().all(|&u| u == p / g),
                "p={p} g={g}: {updates:?}"
            );
        }
    }

    #[test]
    fn hier_cross_group_traffic_is_bridge_gradients_only() {
        let (p, g, n) = (8usize, 2usize, 16usize);
        let groups = p / g;
        let s = build(Strategy::WeiPipeHier, PipelineSpec::new(p, n).with_group(g));
        let bridge = |r: usize| r % g == g - 1;
        let mut cross = 0usize;
        for (_, op) in s.iter_ops() {
            if let OpKind::Send(k) = &op.kind {
                if k.src / g != k.dst / g {
                    // Only the grad ring-reduce/broadcast hops between
                    // designated bridge ranks may ride the slow hop.
                    assert_eq!(k.kind, MsgKind::WeightGrads, "{k:?}");
                    assert!(bridge(k.src) && bridge(k.dst), "{k:?}");
                    cross += 1;
                }
            }
        }
        // 2·(G−1) hops per chunk: the classic all-reduce message count.
        assert_eq!(cross, 2 * (groups - 1) * g);
    }
}
