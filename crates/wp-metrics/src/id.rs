//! Typed metric identities.
//!
//! Every metric the stack records is a variant of one of three enums —
//! [`Counter`] (monotonic `u64`), [`Gauge`] (last-written `f64`), or
//! [`Hist`] (power-of-two log-bucketed `u64` histogram). The discriminant
//! *is* the slot index into the registry's fixed arrays, so recording a
//! metric never hashes or compares strings; names exist only at the
//! export/parse boundary.

macro_rules! metric_enum {
    (
        $(#[$doc:meta])*
        $name:ident {
            $( $(#[$vdoc:meta])* $variant:ident => $prom:literal, )+
        }
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum $name {
            $( $(#[$vdoc])* $variant, )+
        }

        impl $name {
            /// Every variant, in slot order.
            pub const ALL: &'static [$name] = &[ $( $name::$variant, )+ ];

            /// Number of variants (the registry's slot-array length).
            pub const COUNT: usize = $name::ALL.len();

            /// Slot index into the registry's fixed array.
            #[inline]
            pub fn index(self) -> usize {
                self as usize
            }

            /// The Prometheus metric name (also the JSON key).
            pub fn name(self) -> &'static str {
                match self {
                    $( $name::$variant => $prom, )+
                }
            }

            /// Inverse of [`name`](Self::name), for parse-back.
            pub fn from_name(s: &str) -> Option<$name> {
                match s {
                    $( $prom => Some($name::$variant), )+
                    _ => None,
                }
            }

            /// The variant at slot `index`, if in range.
            pub fn from_index(index: usize) -> Option<$name> {
                $name::ALL.get(index).copied()
            }
        }
    };
}

metric_enum! {
    /// Monotonic event/byte counters. Cross-rank aggregation sums them.
    Counter {
        /// Bytes sent point-to-point (wire size, matches `TrafficMeter`).
        P2pBytesSent => "wp_comm_p2p_bytes_sent_total",
        /// Point-to-point messages sent.
        P2pMsgsSent => "wp_comm_p2p_msgs_sent_total",
        /// Bytes sent inside collectives.
        CollBytesSent => "wp_comm_collective_bytes_sent_total",
        /// Collective message hops sent.
        CollMsgsSent => "wp_comm_collective_msgs_sent_total",
        /// Wire bytes received point-to-point.
        P2pBytesRecv => "wp_comm_p2p_bytes_recv_total",
        /// Wire bytes received as collective hops.
        CollBytesRecv => "wp_comm_collective_bytes_recv_total",
        /// Messages received (both classes).
        MsgsRecv => "wp_comm_msgs_recv_total",
        /// Fault events injected by a fault plan.
        FaultsInjected => "wp_comm_faults_injected_total",
        /// Receive poll retries (wakeups that found no matching frame).
        RecvRetries => "wp_comm_recv_retries_total",
        /// Receives that exhausted their timeout budget.
        RecvTimeouts => "wp_comm_recv_timeouts_total",
        /// Nanoseconds spent stalled on link-model pacing.
        PacingStallNs => "wp_comm_pacing_stall_ns_total",
        /// TCP DATA frames written to peers.
        TcpDataFramesSent => "wp_tcp_data_frames_sent_total",
        /// TCP ABORT frames written to peers.
        TcpAbortFramesSent => "wp_tcp_abort_frames_sent_total",
        /// TCP GOODBYE frames written to peers.
        TcpGoodbyeFramesSent => "wp_tcp_goodbye_frames_sent_total",
        /// TCP DATA frames read from peers.
        TcpDataFramesRecv => "wp_tcp_data_frames_recv_total",
        /// TCP ABORT frames read from peers.
        TcpAbortFramesRecv => "wp_tcp_abort_frames_recv_total",
        /// TCP GOODBYE frames read from peers.
        TcpGoodbyeFramesRecv => "wp_tcp_goodbye_frames_recv_total",
        /// Standing aborts relayed to peers at teardown.
        TcpAbortRelays => "wp_tcp_abort_relays_total",
        /// Training iterations completed by this rank.
        StepsCompleted => "wp_train_steps_total",
        /// Microbatch forward passes executed.
        MicrobatchesFwd => "wp_train_microbatches_fwd_total",
        /// Label tokens contributing to the loss so far.
        TokensProcessed => "wp_train_tokens_total",
        /// Optimizer steps skipped because the scaled gradient overflowed.
        OverflowSkipped => "wp_optim_overflow_skipped_steps_total",
        /// Frames dropped on arrival because they carried another
        /// configuration epoch (stragglers from a pre-fault world).
        StaleFramesDropped => "wp_comm_stale_frames_dropped_total",
        /// Elastic recovery epochs this rank has survived into (one per
        /// successful re-form-and-resume after a fault).
        RecoveryEpochs => "wp_elastic_recovery_epochs_total",
    }
}

metric_enum! {
    /// Last-value gauges (`f64`). Cross-rank aggregation keeps them per rank.
    Gauge {
        /// Most recent mean loss over a step's microbatches.
        Loss => "wp_train_loss",
        /// Most recent global gradient L2 norm (chunk-local per rank).
        GradNorm => "wp_train_grad_norm",
        /// Tokens per wall-clock second over the run so far.
        TokensPerSec => "wp_train_tokens_per_sec",
        /// Current learning rate.
        CurrentLr => "wp_optim_lr",
        /// Reorder-buffer depth observed at the last receive.
        ReorderDepth => "wp_comm_reorder_depth",
        /// High-water reorder-buffer depth.
        ReorderDepthMax => "wp_comm_reorder_depth_max",
        /// Frames queued to the busiest peer writer at the last send.
        TcpSendQueueDepth => "wp_tcp_send_queue_depth",
        /// High-water per-peer writer queue depth.
        TcpSendQueueDepthMax => "wp_tcp_send_queue_depth_max",
    }
}

metric_enum! {
    /// Power-of-two log-bucketed `u64` histograms (nanosecond durations).
    Hist {
        /// Wall time of one full training iteration.
        StepWallNs => "wp_train_step_wall_ns",
        /// Per-chunk microbatch forward compute time.
        FwdNs => "wp_train_fwd_ns",
        /// Per-chunk microbatch backward (full or data-grad) compute time.
        BwdNs => "wp_train_bwd_ns",
        /// Per-chunk weight-gradient compute time.
        WgradNs => "wp_train_wgrad_ns",
        /// Per-chunk weight-update apply time.
        UpdateNs => "wp_train_update_ns",
        /// Optimizer (master-weight) step time.
        OptimStepNs => "wp_optim_step_ns",
        /// Wall time to re-shard checkpointed weights onto a shrunk world
        /// and rebuild runtime state (one observation per recovery).
        ReshardNs => "wp_elastic_reshard_ns",
    }
}

/// The three metric families, for generic export plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Last-value gauge.
    Gauge,
    /// Log-bucketed histogram.
    Histogram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_roundtrip() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Counter::from_index(i), Some(*c));
            assert_eq!(Counter::from_name(c.name()), Some(*c));
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
            assert_eq!(Gauge::from_name(g.name()), Some(*g));
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
            assert_eq!(Hist::from_name(h.name()), Some(*h));
        }
        assert_eq!(Counter::from_index(Counter::COUNT), None);
        assert_eq!(Counter::from_name("nope"), None);
    }

    #[test]
    fn names_are_unique_and_prometheus_shaped() {
        let mut names: Vec<&str> = Counter::ALL
            .iter()
            .map(|c| c.name())
            .chain(Gauge::ALL.iter().map(|g| g.name()))
            .chain(Hist::ALL.iter().map(|h| h.name()))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "metric names must be unique");
        for n in names {
            assert!(n.starts_with("wp_"), "{n} must be wp_-prefixed");
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{n} must be a bare Prometheus identifier"
            );
        }
        for c in Counter::ALL {
            assert!(c.name().ends_with("_total"), "{} is a counter", c.name());
        }
        for h in Hist::ALL {
            assert!(!h.name().ends_with("_total"), "{}", h.name());
        }
    }
}
