//! The registry: fixed-slot, lock-free, per-rank metric storage.
//!
//! A [`MetricsRegistry`] owns one slot block per rank — an array of
//! counters, an array of gauges, and an array of histograms, all sized by
//! the typed-id enums at construction. Each instrumented site holds a cheap
//! [`RankMetrics`] handle (an `Arc` plus a rank index) and updates slots
//! with single relaxed atomic operations — **no locks, no allocation, no
//! syscalls** on the hot path beyond reading the monotonic clock.
//!
//! ## Consistency
//!
//! Unlike `wp-trace`'s multi-word span slots, every metric here is one
//! `AtomicU64`, so there is no torn-record protocol: a snapshot taken at
//! any time sees a valid (if slightly stale) value per slot. Histograms
//! update three words (`bucket`, `count`, `sum`) independently; the
//! intended protocol — snapshot after the world's threads have joined —
//! makes them mutually consistent, and a mid-run snapshot degrades to a
//! histogram whose `count` briefly disagrees with its bucket sum, never to
//! a panic.

use crate::id::{Counter, Gauge, Hist};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of log₂ buckets per histogram: bucket 0 holds zero-valued
/// observations, bucket `i` holds values in `[2^(i-1), 2^i)`, and the last
/// bucket also absorbs everything at or above `2^62`.
pub const HIST_BUCKETS: usize = 64;

/// The bucket index a value lands in.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= HIST_BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

#[derive(Debug)]
struct HistSlots {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistSlots {
    fn empty() -> Self {
        HistSlots {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct RankSlots {
    counters: Vec<AtomicU64>,
    /// `f64` values stored as bits.
    gauges: Vec<AtomicU64>,
    hists: Vec<HistSlots>,
}

impl RankSlots {
    fn empty() -> Self {
        RankSlots {
            counters: (0..Counter::COUNT).map(|_| AtomicU64::new(0)).collect(),
            gauges: (0..Gauge::COUNT)
                .map(|_| AtomicU64::new(0f64.to_bits()))
                .collect(),
            hists: (0..Hist::COUNT).map(|_| HistSlots::empty()).collect(),
        }
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    ranks: Vec<RankSlots>,
}

/// Whether (and that's all) metrics are recorded. Mirrors `TraceConfig`:
/// the default is off, and off means no registry is built at all — every
/// instrumented site costs one `Option` branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Record metrics when true.
    pub enabled: bool,
}

impl MetricsConfig {
    /// Metrics disabled (the default): no registry, bit-identical training.
    pub fn off() -> Self {
        MetricsConfig { enabled: false }
    }

    /// Metrics enabled.
    pub fn on() -> Self {
        MetricsConfig { enabled: true }
    }
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig::off()
    }
}

/// Shared, lock-free, per-rank metric registry. Cloning shares the slots.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

/// One rank's write handle into a [`MetricsRegistry`]. Cloning is a
/// reference-count bump; all clones write the same rank's slots.
#[derive(Debug, Clone)]
pub struct RankMetrics {
    inner: Arc<Inner>,
    rank: usize,
}

impl MetricsRegistry {
    /// A registry for `ranks` ranks. All memory is allocated here;
    /// recording never allocates.
    pub fn new(ranks: usize) -> Self {
        MetricsRegistry {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                ranks: (0..ranks).map(|_| RankSlots::empty()).collect(),
            }),
        }
    }

    /// Number of rank slot blocks.
    pub fn world_size(&self) -> usize {
        self.inner.ranks.len()
    }

    /// The write handle for `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn handle(&self, rank: usize) -> RankMetrics {
        assert!(rank < self.inner.ranks.len(), "rank {rank} out of range");
        RankMetrics {
            inner: self.inner.clone(),
            rank,
        }
    }

    /// Snapshot every rank's slots.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            ranks: (0..self.inner.ranks.len())
                .map(|r| self.snapshot_rank(r))
                .collect(),
        }
    }

    /// Snapshot one rank's slots.
    pub fn snapshot_rank(&self, rank: usize) -> RankSnapshot {
        let slots = &self.inner.ranks[rank];
        RankSnapshot {
            rank,
            counters: slots
                .counters
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            gauges: slots
                .gauges
                .iter()
                .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
                .collect(),
            hists: slots
                .hists
                .iter()
                .map(|h| HistSnapshot {
                    buckets: h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

impl RankMetrics {
    /// The rank this handle writes.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Nanoseconds since the registry's epoch. Use as a duration's start
    /// mark for [`observe_since`](Self::observe_since).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Add `v` to a counter. One relaxed `fetch_add`.
    #[inline]
    pub fn add(&self, c: Counter, v: u64) {
        self.inner.ranks[self.rank].counters[c.index()].fetch_add(v, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Set a gauge to `v`. One relaxed store.
    #[inline]
    pub fn set(&self, g: Gauge, v: f64) {
        self.inner.ranks[self.rank].gauges[g.index()].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise a gauge to `v` if `v` is larger (high-water tracking for
    /// non-negative quantities like queue depths). A bounded CAS loop.
    #[inline]
    pub fn set_max(&self, g: Gauge, v: f64) {
        let slot = &self.inner.ranks[self.rank].gauges[g.index()];
        let mut cur = slot.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match slot.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record `v` into a histogram: one bucket increment plus the shared
    /// `count`/`sum` updates — three relaxed `fetch_add`s.
    #[inline]
    pub fn observe(&self, h: Hist, v: u64) {
        let slots = &self.inner.ranks[self.rank].hists[h.index()];
        slots.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        slots.count.fetch_add(1, Ordering::Relaxed);
        slots.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record the duration since `start_ns` (from [`now_ns`](Self::now_ns))
    /// into a histogram, returning the observed nanoseconds.
    #[inline]
    pub fn observe_since(&self, h: Hist, start_ns: u64) -> u64 {
        let dur = self.now_ns().saturating_sub(start_ns);
        self.observe(h, dur);
        dur
    }
}

/// Immutable snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts, length [`HIST_BUCKETS`].
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (exact: `u64` nanoseconds, no floats).
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistSnapshot {
    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Highest bucket index holding at least one observation, if any.
    pub fn highest_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&b| b > 0)
    }
}

/// Immutable snapshot of one rank's slots.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSnapshot {
    /// The rank these values belong to.
    pub rank: usize,
    /// Counter values, indexed by [`Counter::index`].
    pub counters: Vec<u64>,
    /// Gauge values, indexed by [`Gauge::index`].
    pub gauges: Vec<f64>,
    /// Histograms, indexed by [`Hist::index`].
    pub hists: Vec<HistSnapshot>,
}

impl RankSnapshot {
    /// An all-zero snapshot for `rank`.
    pub fn empty(rank: usize) -> Self {
        RankSnapshot {
            rank,
            counters: vec![0; Counter::COUNT],
            gauges: vec![0.0; Gauge::COUNT],
            hists: vec![HistSnapshot::default(); Hist::COUNT],
        }
    }

    /// This rank's value for one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// This rank's value for one gauge.
    pub fn gauge(&self, g: Gauge) -> f64 {
        self.gauges[g.index()]
    }

    /// This rank's snapshot of one histogram.
    pub fn hist(&self, h: Hist) -> &HistSnapshot {
        &self.hists[h.index()]
    }

    /// Serialize as one bit-exact ASCII line (hex words; gauges as raw
    /// `f64` bits), the launcher's cross-process wire format. Inverse of
    /// [`from_line`](Self::from_line).
    pub fn to_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + 17 * (self.counters.len() + self.gauges.len()));
        let _ = write!(out, "{:x} c:", self.rank);
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c:x}");
        }
        out.push_str(" g:");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{:x}", g.to_bits());
        }
        out.push_str(" h:");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            let _ = write!(out, "{:x},{:x}", h.count, h.sum);
            for (b, &v) in h.buckets.iter().enumerate() {
                if v > 0 {
                    let _ = write!(out, ",{b:x}:{v:x}");
                }
            }
        }
        out
    }

    /// Parse a [`to_line`](Self::to_line) line. Strict: the slot counts
    /// must match this build's metric enums exactly.
    pub fn from_line(line: &str) -> Option<RankSnapshot> {
        let mut fields = line.split_whitespace();
        let rank = usize::from_str_radix(fields.next()?, 16).ok()?;
        let counters: Vec<u64> = fields
            .next()?
            .strip_prefix("c:")?
            .split(',')
            .map(|v| u64::from_str_radix(v, 16).ok())
            .collect::<Option<_>>()?;
        let gauges: Vec<f64> = fields
            .next()?
            .strip_prefix("g:")?
            .split(',')
            .map(|v| u64::from_str_radix(v, 16).ok().map(f64::from_bits))
            .collect::<Option<_>>()?;
        let mut hists = Vec::with_capacity(Hist::COUNT);
        for h in fields.next()?.strip_prefix("h:")?.split('|') {
            let mut parts = h.split(',');
            let count = u64::from_str_radix(parts.next()?, 16).ok()?;
            let sum = u64::from_str_radix(parts.next()?, 16).ok()?;
            let mut buckets = vec![0u64; HIST_BUCKETS];
            for pair in parts {
                let (b, v) = pair.split_once(':')?;
                let b = usize::from_str_radix(b, 16).ok()?;
                if b >= HIST_BUCKETS {
                    return None;
                }
                buckets[b] = u64::from_str_radix(v, 16).ok()?;
            }
            hists.push(HistSnapshot {
                buckets,
                count,
                sum,
            });
        }
        if fields.next().is_some()
            || counters.len() != Counter::COUNT
            || gauges.len() != Gauge::COUNT
            || hists.len() != Hist::COUNT
        {
            return None;
        }
        Some(RankSnapshot {
            rank,
            counters,
            gauges,
            hists,
        })
    }
}

/// An immutable snapshot of everything a [`MetricsRegistry`] recorded —
/// or, on a launcher, the merge of every worker's [`RankSnapshot`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// One entry per rank, rank order.
    pub ranks: Vec<RankSnapshot>,
}

impl MetricsSnapshot {
    /// An all-zero snapshot for a world of `ranks` ranks.
    pub fn empty(ranks: usize) -> Self {
        MetricsSnapshot {
            ranks: (0..ranks).map(RankSnapshot::empty).collect(),
        }
    }

    /// Number of rank entries.
    pub fn world_size(&self) -> usize {
        self.ranks.len()
    }

    /// Replace (or append) one rank's entry with a snapshot taken in
    /// another process, growing the world as needed — the launcher-side
    /// dual of `TrafficMeter::merge_rank`.
    pub fn merge_rank(&mut self, snap: RankSnapshot) {
        while self.ranks.len() <= snap.rank {
            self.ranks.push(RankSnapshot::empty(self.ranks.len()));
        }
        let rank = snap.rank;
        self.ranks[rank] = snap;
    }

    /// A counter summed across ranks.
    pub fn total(&self, c: Counter) -> u64 {
        self.ranks.iter().map(|r| r.counter(c)).sum()
    }

    /// One histogram folded across ranks.
    pub fn hist_total(&self, h: Hist) -> HistSnapshot {
        let mut out = HistSnapshot::default();
        for r in &self.ranks {
            out.merge(r.hist(h));
        }
        out
    }

    /// Total nanoseconds recorded in the compute histograms (forward,
    /// backward, weight-grad, update) across all ranks. When tracing and
    /// metrics run side by side this equals the trace's summed `busy_ns`
    /// exactly, because both are fed the same measured durations.
    pub fn compute_mass_ns(&self) -> u64 {
        [Hist::FwdNs, Hist::BwdNs, Hist::WgradNs, Hist::UpdateNs]
            .iter()
            .map(|&h| self.hist_total(h).sum)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 62) - 1), 62);
        assert_eq!(bucket_index(1 << 62), 63);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every value lands within its bucket's bounds.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} in bucket {i}");
            if i > 0 && i < HIST_BUCKETS - 1 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn counters_gauges_hists_record_and_snapshot() {
        let reg = MetricsRegistry::new(2);
        let m0 = reg.handle(0);
        m0.add(Counter::P2pBytesSent, 100);
        m0.incr(Counter::P2pMsgsSent);
        m0.set(Gauge::Loss, 1.25);
        m0.set_max(Gauge::ReorderDepthMax, 3.0);
        m0.set_max(Gauge::ReorderDepthMax, 2.0); // lower: ignored
        m0.observe(Hist::FwdNs, 5);
        m0.observe(Hist::FwdNs, 0);
        let snap = reg.snapshot();
        assert_eq!(snap.world_size(), 2);
        let r0 = &snap.ranks[0];
        assert_eq!(r0.counter(Counter::P2pBytesSent), 100);
        assert_eq!(r0.counter(Counter::P2pMsgsSent), 1);
        assert_eq!(r0.gauge(Gauge::Loss), 1.25);
        assert_eq!(r0.gauge(Gauge::ReorderDepthMax), 3.0);
        let h = r0.hist(Hist::FwdNs);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 5);
        assert_eq!(h.buckets[bucket_index(5)], 1);
        assert_eq!(h.buckets[0], 1);
        // Rank 1 untouched.
        assert_eq!(snap.ranks[1], RankSnapshot::empty(1));
        assert_eq!(snap.total(Counter::P2pBytesSent), 100);
    }

    #[test]
    fn clones_share_slots_and_concurrent_adds_are_lossless() {
        let reg = MetricsRegistry::new(1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = reg.handle(0);
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.incr(Counter::MsgsRecv);
                        m.observe(Hist::StepWallNs, 7);
                        m.set_max(Gauge::TcpSendQueueDepthMax, 4.0);
                    }
                });
            }
        });
        let r = reg.snapshot_rank(0);
        assert_eq!(r.counter(Counter::MsgsRecv), 4000);
        assert_eq!(r.hist(Hist::StepWallNs).count, 4000);
        assert_eq!(r.hist(Hist::StepWallNs).sum, 28000);
        assert_eq!(r.gauge(Gauge::TcpSendQueueDepthMax), 4.0);
    }

    #[test]
    fn line_codec_roundtrips_bit_exactly() {
        let reg = MetricsRegistry::new(3);
        let m = reg.handle(2);
        m.add(Counter::CollBytesSent, u64::MAX);
        m.set(Gauge::GradNorm, -0.0); // sign bit must survive
        m.set(Gauge::CurrentLr, 3e-4);
        m.observe(Hist::OptimStepNs, 12345);
        m.observe(Hist::OptimStepNs, u64::MAX);
        let snap = reg.snapshot_rank(2);
        let line = snap.to_line();
        let back = RankSnapshot::from_line(&line).expect("codec line parses");
        assert_eq!(back, snap);
        assert_eq!(back.gauge(Gauge::GradNorm).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn line_codec_rejects_truncation_and_garbage() {
        let snap = RankSnapshot::empty(0);
        let line = snap.to_line();
        assert!(RankSnapshot::from_line(&line).is_some());
        // Any prefix that cuts inside the structure must fail, not
        // silently produce a short snapshot.
        assert!(RankSnapshot::from_line(&line[..line.len() / 2]).is_none());
        assert!(RankSnapshot::from_line("").is_none());
        assert!(RankSnapshot::from_line("0 c:1,2 g:0 h:0,0").is_none());
        assert!(RankSnapshot::from_line(&format!("{line} extra")).is_none());
    }

    #[test]
    fn merge_rank_folds_remote_snapshots() {
        let mut world = MetricsSnapshot::empty(2);
        let reg = MetricsRegistry::new(2);
        let m = reg.handle(1);
        m.add(Counter::TokensProcessed, 64);
        m.observe(Hist::BwdNs, 9);
        world.merge_rank(reg.snapshot_rank(1));
        assert_eq!(world.total(Counter::TokensProcessed), 64);
        assert_eq!(world.hist_total(Hist::BwdNs).sum, 9);
        assert_eq!(world.ranks[0], RankSnapshot::empty(0));
        // Merging a higher rank grows the world.
        let mut r3 = RankSnapshot::empty(3);
        r3.counters[Counter::StepsCompleted.index()] = 5;
        world.merge_rank(r3);
        assert_eq!(world.world_size(), 4);
        assert_eq!(world.total(Counter::StepsCompleted), 5);
    }

    #[test]
    fn compute_mass_sums_the_compute_histograms_only() {
        let reg = MetricsRegistry::new(1);
        let m = reg.handle(0);
        m.observe(Hist::FwdNs, 10);
        m.observe(Hist::BwdNs, 20);
        m.observe(Hist::WgradNs, 30);
        m.observe(Hist::UpdateNs, 40);
        m.observe(Hist::StepWallNs, 1000); // not compute
        m.observe(Hist::OptimStepNs, 500); // not compute
        assert_eq!(reg.snapshot().compute_mass_ns(), 100);
    }

    #[test]
    fn observe_since_is_monotonic() {
        let reg = MetricsRegistry::new(1);
        let m = reg.handle(0);
        let t0 = m.now_ns();
        let dur = m.observe_since(Hist::StepWallNs, t0);
        let h = reg.snapshot_rank(0).hist(Hist::StepWallNs).clone();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, dur);
    }
}
