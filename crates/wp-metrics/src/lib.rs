//! # wp-metrics — lock-free per-rank metrics for the WeiPipe runtime
//!
//! `wp-trace` records *events* (spans on a timeline); this crate records
//! *aggregates*: monotonic counters, last-value gauges, and power-of-two
//! log-bucketed histograms, one fixed slot array per rank. Instrumented
//! sites in `wp-comm`, `tcp`, `weipipe`, and `wp-optim` hold a cheap
//! [`RankMetrics`] handle and update slots with single relaxed atomic
//! operations — **no locks, no allocation, no string lookup** on the hot
//! path. Metric identity is a typed enum ([`Counter`], [`Gauge`],
//! [`Hist`]), so a metric's slot index, Prometheus name, and type are all
//! resolved at compile time.
//!
//! After a run, a [`MetricsSnapshot`] feeds three consumers:
//!
//! 1. [`export_prometheus`] — Prometheus text exposition format, validated
//!    offline by [`validate_prometheus`] and parsed back (for round-trip
//!    tests and launcher-side merging) by [`parse_prometheus`];
//! 2. [`export_json`] — a JSON document with the same content, validated by
//!    [`validate_json`] / parsed by [`parse_json`];
//! 3. the `wp-bench ranks` launcher, which ships per-rank snapshots across
//!    process boundaries with the hex-exact line codec
//!    ([`RankSnapshot::to_text`] / [`RankSnapshot::from_text`]) and merges
//!    them with [`MetricsSnapshot::merge_rank`].
//!
//! ## Hot-path contract
//!
//! Like `wp-trace`, the registry is **zero-allocation and lock-free** after
//! construction: all slot arrays are sized at [`MetricsRegistry::new`] time,
//! and every update is one `fetch_add` / `store` / bounded CAS (proved by
//! the counting-allocator test in `tests/alloc.rs`). Metrics are
//! default-off via [`MetricsConfig`]: a disabled config builds no registry,
//! so instrumented sites cost one `Option` branch and training output is
//! bit-identical to an uninstrumented build.
//!
//! This crate intentionally depends on nothing (not even the workspace's
//! vendored crates), so every other crate can depend on it.

#![warn(missing_docs)]

mod export;
mod id;
mod registry;

pub use export::{
    export_json, export_prometheus, parse_json, parse_prometheus, validate_json,
    validate_prometheus, ExportStats,
};
pub use id::{Counter, Gauge, Hist, MetricKind};
pub use registry::{
    HistSnapshot, MetricsConfig, MetricsRegistry, MetricsSnapshot, RankMetrics, RankSnapshot,
    HIST_BUCKETS,
};
