//! Offline exporters: Prometheus text exposition and JSON.
//!
//! The build environment is offline, so (matching `wp-trace`'s approach)
//! both formats are emitted by hand and each ships a strict parser:
//! [`validate_prometheus`] / [`validate_json`] prove an exported document
//! is well-formed without external tooling, and [`parse_prometheus`] /
//! [`parse_json`] reconstruct the [`MetricsSnapshot`] exactly — the
//! round-trip property the proptest suite enforces. Counters and histogram
//! sums are `u64` and rendered as decimal integers (exact); gauges are
//! `f64` rendered with Rust's shortest-round-trip `Display`, so parse-back
//! recovers the bits for every finite value.

use crate::id::{Counter, Gauge, Hist};
use crate::registry::{
    bucket_upper_bound, HistSnapshot, MetricsSnapshot, RankSnapshot, HIST_BUCKETS,
};
use std::fmt::Write as _;

/// Summary a successful validation returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportStats {
    /// Rank entries in the document.
    pub ranks: usize,
    /// Individual sample values (Prometheus: sample lines; JSON: leaf
    /// values), histogram buckets included.
    pub samples: usize,
    /// Distinct counter metrics seen.
    pub counters: usize,
    /// Distinct gauge metrics seen.
    pub gauges: usize,
    /// Distinct histogram metrics seen.
    pub histograms: usize,
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

fn parse_f64(s: &str) -> Option<f64> {
    match s {
        "NaN" => Some(f64::NAN),
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        _ => s.parse().ok(),
    }
}

// ---- Prometheus text exposition -------------------------------------------

/// Render a snapshot in the Prometheus text exposition format: one
/// `# TYPE` header per metric, one sample per rank (label `rank="<r>"`),
/// histograms as cumulative `_bucket{le=...}` series with `_sum` and
/// `_count`. Bucket series stop at the highest occupied bucket (plus the
/// mandatory `+Inf` bucket), so empty tails cost nothing.
pub fn export_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    for &c in Counter::ALL {
        let _ = writeln!(out, "# TYPE {} counter", c.name());
        for r in &snap.ranks {
            let _ = writeln!(out, "{}{{rank=\"{}\"}} {}", c.name(), r.rank, r.counter(c));
        }
    }
    for &g in Gauge::ALL {
        let _ = writeln!(out, "# TYPE {} gauge", g.name());
        for r in &snap.ranks {
            let _ = writeln!(
                out,
                "{}{{rank=\"{}\"}} {}",
                g.name(),
                r.rank,
                fmt_f64(r.gauge(g))
            );
        }
    }
    for &h in Hist::ALL {
        let _ = writeln!(out, "# TYPE {} histogram", h.name());
        for r in &snap.ranks {
            let hist = r.hist(h);
            let top = hist.highest_bucket().unwrap_or(0).min(HIST_BUCKETS - 2);
            let mut cum = 0u64;
            for (i, &b) in hist.buckets.iter().enumerate().take(top + 1) {
                cum += b;
                let _ = writeln!(
                    out,
                    "{}_bucket{{rank=\"{}\",le=\"{}\"}} {}",
                    h.name(),
                    r.rank,
                    bucket_upper_bound(i),
                    cum
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{{rank=\"{}\",le=\"+Inf\"}} {}",
                h.name(),
                r.rank,
                hist.count
            );
            let _ = writeln!(out, "{}_sum{{rank=\"{}\"}} {}", h.name(), r.rank, hist.sum);
            let _ = writeln!(
                out,
                "{}_count{{rank=\"{}\"}} {}",
                h.name(),
                r.rank,
                hist.count
            );
        }
    }
    out
}

/// What family a sample line belongs to, from its (possibly suffixed) name.
enum SampleName {
    Counter(Counter),
    Gauge(Gauge),
    Bucket(Hist),
    Sum(Hist),
    Count(Hist),
}

fn classify(name: &str) -> Option<SampleName> {
    if let Some(c) = Counter::from_name(name) {
        return Some(SampleName::Counter(c));
    }
    if let Some(g) = Gauge::from_name(name) {
        return Some(SampleName::Gauge(g));
    }
    if let Some(base) = name.strip_suffix("_bucket") {
        return Hist::from_name(base).map(SampleName::Bucket);
    }
    if let Some(base) = name.strip_suffix("_sum") {
        return Hist::from_name(base).map(SampleName::Sum);
    }
    if let Some(base) = name.strip_suffix("_count") {
        return Hist::from_name(base).map(SampleName::Count);
    }
    None
}

/// `le` label → bucket index. Finite bounds are `0` or `2^i - 1`.
fn le_to_bucket(le: &str) -> Option<usize> {
    if le == "+Inf" {
        return Some(HIST_BUCKETS - 1);
    }
    let v: u64 = le.parse().ok()?;
    if v == 0 {
        return Some(0);
    }
    let i = v.count_ones() as usize;
    (v == bucket_upper_bound(i) && i < HIST_BUCKETS - 1).then_some(i)
}

struct PromSample<'a> {
    name: &'a str,
    rank: usize,
    le: Option<&'a str>,
    value: &'a str,
}

fn parse_sample_line(line: &str, no: usize) -> Result<PromSample<'_>, String> {
    let brace = line
        .find('{')
        .ok_or_else(|| format!("line {no}: sample has no label set: {line:?}"))?;
    let name = &line[..brace];
    let close = line[brace..]
        .find('}')
        .map(|i| brace + i)
        .ok_or_else(|| format!("line {no}: unterminated label set"))?;
    let labels = &line[brace + 1..close];
    let value = line[close + 1..].trim();
    if value.is_empty() {
        return Err(format!("line {no}: sample has no value"));
    }
    let mut rank = None;
    let mut le = None;
    for pair in labels.split(',') {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("line {no}: malformed label {pair:?}"))?;
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {no}: unquoted label value {pair:?}"))?;
        match k {
            "rank" => {
                rank = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("line {no}: bad rank label {v:?}"))?,
                )
            }
            "le" => le = Some(v),
            other => return Err(format!("line {no}: unexpected label {other:?}")),
        }
    }
    Ok(PromSample {
        name,
        rank: rank.ok_or_else(|| format!("line {no}: sample lacks a rank label"))?,
        le,
        value,
    })
}

/// Parse a Prometheus text-exposition document (as produced by
/// [`export_prometheus`]) back into a [`MetricsSnapshot`]. Strict: every
/// sample must use a declared metric name, histogram bucket series must be
/// cumulative and agree with their `_count`, and duplicate samples are
/// rejected.
pub fn parse_prometheus(text: &str) -> Result<(MetricsSnapshot, ExportStats), String> {
    let mut snap = MetricsSnapshot::default();
    let mut typed: Vec<(&str, &str)> = Vec::new();
    let mut hist_parts: Vec<HistParts> = Vec::new();
    let mut seen: Vec<(String, usize)> = Vec::new();
    let mut stats = ExportStats {
        ranks: 0,
        samples: 0,
        counters: 0,
        gauges: 0,
        histograms: 0,
    };

    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut words = rest.split_whitespace();
            if words.next() == Some("TYPE") {
                let name = words
                    .next()
                    .ok_or(format!("line {no}: TYPE lacks a name"))?;
                let kind = words
                    .next()
                    .ok_or(format!("line {no}: TYPE lacks a kind"))?;
                if typed.iter().any(|&(n, _)| n == name) {
                    return Err(format!("line {no}: duplicate TYPE for {name}"));
                }
                let ok = match kind {
                    "counter" => Counter::from_name(name).is_some(),
                    "gauge" => Gauge::from_name(name).is_some(),
                    "histogram" => Hist::from_name(name).is_some(),
                    _ => false,
                };
                if !ok {
                    return Err(format!("line {no}: unknown metric {name} typed {kind}"));
                }
                match kind {
                    "counter" => stats.counters += 1,
                    "gauge" => stats.gauges += 1,
                    _ => stats.histograms += 1,
                }
                typed.push((name, kind));
            }
            continue;
        }

        let s = parse_sample_line(line, no)?;
        stats.samples += 1;
        let family = classify(s.name)
            .ok_or_else(|| format!("line {no}: sample for undeclared metric {}", s.name))?;
        let base = match &family {
            SampleName::Counter(c) => c.name(),
            SampleName::Gauge(g) => g.name(),
            SampleName::Bucket(h) | SampleName::Sum(h) | SampleName::Count(h) => h.name(),
        };
        if !typed.iter().any(|&(n, _)| n == base) {
            return Err(format!("line {no}: sample precedes its TYPE: {}", s.name));
        }
        let dedup_key = (format!("{}{}", s.name, s.le.unwrap_or("")), s.rank);
        if seen.contains(&dedup_key) {
            return Err(format!(
                "line {no}: duplicate sample {} rank {}",
                s.name, s.rank
            ));
        }
        seen.push(dedup_key);

        let r = rank_entry(&mut snap, s.rank);
        match family {
            SampleName::Counter(c) => {
                r.counters[c.index()] = s
                    .value
                    .parse()
                    .map_err(|_| format!("line {no}: bad counter value {:?}", s.value))?;
            }
            SampleName::Gauge(g) => {
                r.gauges[g.index()] = parse_f64(s.value)
                    .ok_or_else(|| format!("line {no}: bad gauge value {:?}", s.value))?;
            }
            SampleName::Bucket(h) => {
                let le =
                    s.le.ok_or_else(|| format!("line {no}: bucket sample lacks le"))?;
                let bucket = le_to_bucket(le)
                    .ok_or_else(|| format!("line {no}: le {le:?} is not a bucket bound"))?;
                let cum: u64 = s
                    .value
                    .parse()
                    .map_err(|_| format!("line {no}: bad bucket value {:?}", s.value))?;
                let entry = hist_parts
                    .iter_mut()
                    .find(|(hi, rk, ..)| *hi == h.index() && *rk == s.rank);
                let entry = match entry {
                    Some(e) => e,
                    None => {
                        hist_parts.push((h.index(), s.rank, Vec::new(), None, None));
                        hist_parts.last_mut().expect("just pushed")
                    }
                };
                if let Some(&(_, last)) = entry.2.last() {
                    if cum < last {
                        return Err(format!(
                            "line {no}: {} bucket series not cumulative ({cum} < {last})",
                            h.name()
                        ));
                    }
                }
                entry.2.push((bucket, cum));
            }
            SampleName::Sum(h) => {
                let v = s
                    .value
                    .parse()
                    .map_err(|_| format!("line {no}: bad sum value {:?}", s.value))?;
                upsert(&mut hist_parts, h.index(), s.rank).3 = Some(v);
            }
            SampleName::Count(h) => {
                let v = s
                    .value
                    .parse()
                    .map_err(|_| format!("line {no}: bad count value {:?}", s.value))?;
                upsert(&mut hist_parts, h.index(), s.rank).4 = Some(v);
            }
        }
    }

    // Materialize the accumulated histograms.
    for (hi, rank, series, sum, count) in hist_parts {
        let name = Hist::from_index(hi).expect("index from parse").name();
        let sum = sum.ok_or_else(|| format!("{name} rank {rank}: missing _sum"))?;
        let count = count.ok_or_else(|| format!("{name} rank {rank}: missing _count"))?;
        let (inf_seen, finite): (Vec<_>, Vec<_>) =
            series.iter().partition(|&&(b, _)| b == HIST_BUCKETS - 1);
        let &(_, inf_cum) = inf_seen
            .first()
            .ok_or_else(|| format!("{name} rank {rank}: missing +Inf bucket"))?;
        if inf_cum != count {
            return Err(format!(
                "{name} rank {rank}: +Inf bucket {inf_cum} != count {count}"
            ));
        }
        let mut buckets = vec![0u64; HIST_BUCKETS];
        let mut prev = 0u64;
        let mut prev_bucket = None;
        for &(b, cum) in &finite {
            if prev_bucket.is_some_and(|p| b <= p) {
                return Err(format!("{name} rank {rank}: bucket bounds out of order"));
            }
            buckets[b] = cum - prev;
            prev = cum;
            prev_bucket = Some(b);
        }
        buckets[HIST_BUCKETS - 1] = count
            .checked_sub(prev)
            .ok_or_else(|| format!("{name} rank {rank}: count below last bucket"))?;
        let r = snap
            .ranks
            .get_mut(rank)
            .expect("rank created by its samples");
        r.hists[hi] = HistSnapshot {
            buckets,
            count,
            sum,
        };
    }

    stats.ranks = snap.ranks.len();
    if stats.ranks == 0 || stats.samples == 0 {
        return Err("document holds no samples".into());
    }
    Ok((snap, stats))
}

fn rank_entry(snap: &mut MetricsSnapshot, rank: usize) -> &mut RankSnapshot {
    while snap.ranks.len() <= rank {
        snap.ranks.push(RankSnapshot::empty(snap.ranks.len()));
    }
    &mut snap.ranks[rank]
}

/// A histogram being reassembled while parsing: `(hist index, rank,
/// cumulative bucket samples in emission order, seen sum, seen count)`.
type HistParts = (usize, usize, Vec<(usize, u64)>, Option<u64>, Option<u64>);

fn upsert(parts: &mut Vec<HistParts>, hist: usize, rank: usize) -> &mut HistParts {
    if let Some(i) = parts.iter().position(|(h, r, ..)| *h == hist && *r == rank) {
        return &mut parts[i];
    }
    parts.push((hist, rank, Vec::new(), None, None));
    parts.last_mut().expect("just pushed")
}

/// Validate a Prometheus text-exposition document: it must parse under the
/// strict grammar of [`parse_prometheus`] and hold at least one sample.
pub fn validate_prometheus(text: &str) -> Result<ExportStats, String> {
    parse_prometheus(text).map(|(_, stats)| stats)
}

// ---- JSON ------------------------------------------------------------------

#[cfg(test)]
fn json_escape_ascii(s: &str) -> bool {
    // Metric names are bare Prometheus identifiers; nothing to escape.
    s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Render a snapshot as a JSON document:
///
/// ```json
/// {"wp_metrics":1,"ranks":[{"rank":0,
///   "counters":{"wp_..._total":0,...},
///   "gauges":{"wp_...":0,...},
///   "histograms":{"wp_...":{"count":2,"sum":9,"buckets":[[1,1],[3,1]]}}}]}
/// ```
///
/// Histogram `buckets` are sparse `[index, count]` pairs; non-finite gauges
/// are emitted as the strings `"NaN"` / `"+Inf"` / `"-Inf"` (JSON has no
/// number literals for them).
pub fn export_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"wp_metrics\":1,\"ranks\":[");
    for (ri, r) in snap.ranks.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"rank\":{},\"counters\":{{", r.rank);
        for (i, &c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", c.name(), r.counter(c));
        }
        out.push_str("},\"gauges\":{");
        for (i, &g) in Gauge::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = r.gauge(g);
            if v.is_finite() {
                let _ = write!(out, "\"{}\":{}", g.name(), fmt_f64(v));
            } else {
                let _ = write!(out, "\"{}\":\"{}\"", g.name(), fmt_f64(v));
            }
        }
        out.push_str("},\"histograms\":{");
        for (i, &h) in Hist::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let hist = r.hist(h);
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.name(),
                hist.count,
                hist.sum
            );
            let mut first = true;
            for (b, &v) in hist.buckets.iter().enumerate() {
                if v > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "[{b},{v}]");
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

/// Parse an [`export_json`] document back into a [`MetricsSnapshot`].
/// Strict: the version field must be present, every key must be a known
/// metric of the right family, and histogram bucket totals must equal
/// their `count`.
pub fn parse_json(text: &str) -> Result<(MetricsSnapshot, ExportStats), String> {
    let doc = JsonParser::parse(text)?;
    let top = doc.as_obj().ok_or("top level is not an object")?;
    let version = obj_get(top, "wp_metrics")
        .and_then(Json::as_u64)
        .ok_or("missing wp_metrics version field")?;
    if version != 1 {
        return Err(format!("unsupported wp_metrics version {version}"));
    }
    let ranks = obj_get(top, "ranks")
        .and_then(Json::as_arr)
        .ok_or("missing ranks array")?;
    let mut snap = MetricsSnapshot::default();
    let mut stats = ExportStats {
        ranks: ranks.len(),
        samples: 0,
        counters: 0,
        gauges: 0,
        histograms: 0,
    };
    let mut seen_names: Vec<String> = Vec::new();
    for (i, r) in ranks.iter().enumerate() {
        let r = r
            .as_obj()
            .ok_or_else(|| format!("rank {i} is not an object"))?;
        let rank = obj_get(r, "rank")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("rank entry {i} lacks a rank number"))?
            as usize;
        let mut rs = RankSnapshot::empty(rank);
        let counters = obj_get(r, "counters")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("rank {rank}: missing counters object"))?;
        for (name, v) in counters {
            let c = Counter::from_name(name)
                .ok_or_else(|| format!("rank {rank}: unknown counter {name}"))?;
            rs.counters[c.index()] = v
                .as_u64()
                .ok_or_else(|| format!("rank {rank}: counter {name} is not a u64"))?;
            stats.samples += 1;
            if !seen_names.iter().any(|n| n == name) {
                seen_names.push(name.clone());
                stats.counters += 1;
            }
        }
        let gauges = obj_get(r, "gauges")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("rank {rank}: missing gauges object"))?;
        for (name, v) in gauges {
            let g = Gauge::from_name(name)
                .ok_or_else(|| format!("rank {rank}: unknown gauge {name}"))?;
            let value = match v {
                Json::Str(s) => parse_f64(s)
                    .filter(|v| !v.is_finite())
                    .ok_or_else(|| format!("rank {rank}: gauge {name} bad string value"))?,
                other => other
                    .as_f64()
                    .ok_or_else(|| format!("rank {rank}: gauge {name} is not a number"))?,
            };
            rs.gauges[g.index()] = value;
            stats.samples += 1;
            if !seen_names.iter().any(|n| n == name) {
                seen_names.push(name.clone());
                stats.gauges += 1;
            }
        }
        let hists = obj_get(r, "histograms")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("rank {rank}: missing histograms object"))?;
        for (name, v) in hists {
            let h = Hist::from_name(name)
                .ok_or_else(|| format!("rank {rank}: unknown histogram {name}"))?;
            let obj = v
                .as_obj()
                .ok_or_else(|| format!("rank {rank}: histogram {name} is not an object"))?;
            let count = obj_get(obj, "count")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("rank {rank}: {name} lacks count"))?;
            let sum = obj_get(obj, "sum")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("rank {rank}: {name} lacks sum"))?;
            let pairs = obj_get(obj, "buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("rank {rank}: {name} lacks buckets"))?;
            let mut buckets = vec![0u64; HIST_BUCKETS];
            let mut total = 0u64;
            for p in pairs {
                let pair = p
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("rank {rank}: {name} bucket is not a pair"))?;
                let b = pair[0]
                    .as_u64()
                    .filter(|&b| (b as usize) < HIST_BUCKETS)
                    .ok_or_else(|| format!("rank {rank}: {name} bucket index out of range"))?
                    as usize;
                let v = pair[1]
                    .as_u64()
                    .ok_or_else(|| format!("rank {rank}: {name} bucket count bad"))?;
                if buckets[b] != 0 {
                    return Err(format!("rank {rank}: {name} duplicate bucket {b}"));
                }
                buckets[b] = v;
                total += v;
                stats.samples += 1;
            }
            if total != count {
                return Err(format!(
                    "rank {rank}: {name} buckets sum to {total}, count says {count}"
                ));
            }
            rs.hists[h.index()] = HistSnapshot {
                buckets,
                count,
                sum,
            };
            stats.samples += 1;
            if !seen_names.iter().any(|n| n == name) {
                seen_names.push(name.clone());
                stats.histograms += 1;
            }
        }
        snap.merge_rank(rs);
    }
    if stats.ranks == 0 || stats.samples == 0 {
        return Err("document holds no samples".into());
    }
    Ok((snap, stats))
}

/// Validate an [`export_json`] document: it must parse under the strict
/// schema of [`parse_json`] and hold at least one sample.
pub fn validate_json(text: &str) -> Result<ExportStats, String> {
    parse_json(text).map(|(_, stats)| stats)
}

fn obj_get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---- minimal JSON parser ---------------------------------------------------
//
// Numbers keep their raw text so u64 counters survive exactly (an `f64`
// intermediate would round above 2^53).

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(s: &'a str) -> Result<Json, String> {
        let mut p = JsonParser {
            b: s.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.b
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? != c {
            return Err(format!("expected {:?} at byte {}", c as char, self.i));
        }
        self.i += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected {:?} at byte {}", c as char, self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b[self.i] == b'-' {
            self.i += 1;
        }
        while self.i < self.b.len()
            && matches!(
                self.b[self.i],
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
            )
        {
            self.i += 1;
        }
        let raw = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| format!("bad number at byte {start}"))?;
        // Must at least parse as f64 to be a number.
        raw.parse::<f64>()
            .map_err(|_| format!("bad number at byte {start}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.i).ok_or("unterminated string")?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.b.get(self.i).ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ if c.is_ascii() => out.push(c as char),
                _ => return Err("non-ASCII content in metrics document".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                c => {
                    return Err(format!(
                        "expected , or ] got {:?} at byte {}",
                        c as char, self.i
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            out.push((key, self.value()?));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                c => {
                    return Err(format!(
                        "expected , or }} got {:?} at byte {}",
                        c as char, self.i
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new(2);
        let m0 = reg.handle(0);
        m0.add(Counter::P2pBytesSent, 4096);
        m0.incr(Counter::P2pMsgsSent);
        m0.set(Gauge::Loss, 3.5);
        m0.set(Gauge::CurrentLr, 3e-4);
        m0.observe(Hist::FwdNs, 1000);
        m0.observe(Hist::FwdNs, 0);
        m0.observe(Hist::FwdNs, u64::MAX); // clamps into the last bucket
        let m1 = reg.handle(1);
        m1.add(Counter::TokensProcessed, 1 << 60);
        m1.set(Gauge::GradNorm, -0.0);
        reg.snapshot()
    }

    #[test]
    fn prometheus_export_roundtrips_through_parser() {
        let snap = sample_snapshot();
        let text = export_prometheus(&snap);
        let (back, stats) = parse_prometheus(&text).expect("export must parse");
        assert_eq!(back, snap);
        assert_eq!(stats.ranks, 2);
        assert_eq!(stats.counters, Counter::COUNT);
        assert_eq!(stats.gauges, Gauge::COUNT);
        assert_eq!(stats.histograms, Hist::COUNT);
        assert!(stats.samples > 0);
    }

    #[test]
    fn json_export_roundtrips_through_parser() {
        let snap = sample_snapshot();
        let text = export_json(&snap);
        let (back, stats) = parse_json(&text).expect("export must parse");
        assert_eq!(back, snap);
        assert_eq!(stats.ranks, 2);
        assert_eq!(stats.histograms, Hist::COUNT);
    }

    #[test]
    fn large_counters_survive_json_exactly() {
        // 2^60 + 1 is not representable as f64; a float intermediate would
        // corrupt it.
        let mut snap = MetricsSnapshot::empty(1);
        snap.ranks[0].counters[Counter::TokensProcessed.index()] = (1 << 60) + 1;
        let (back, _) = parse_json(&export_json(&snap)).unwrap();
        assert_eq!(
            back.ranks[0].counter(Counter::TokensProcessed),
            (1 << 60) + 1
        );
    }

    #[test]
    fn non_finite_gauges_survive_both_formats() {
        let mut snap = MetricsSnapshot::empty(1);
        snap.ranks[0].gauges[Gauge::Loss.index()] = f64::INFINITY;
        snap.ranks[0].gauges[Gauge::GradNorm.index()] = f64::NEG_INFINITY;
        let (p, _) = parse_prometheus(&export_prometheus(&snap)).unwrap();
        assert_eq!(p.ranks[0].gauge(Gauge::Loss), f64::INFINITY);
        assert_eq!(p.ranks[0].gauge(Gauge::GradNorm), f64::NEG_INFINITY);
        let (j, _) = parse_json(&export_json(&snap)).unwrap();
        assert_eq!(j.ranks[0].gauge(Gauge::Loss), f64::INFINITY);
        snap.ranks[0].gauges[Gauge::Loss.index()] = f64::NAN;
        let (j, _) = parse_json(&export_json(&snap)).unwrap();
        assert!(j.ranks[0].gauge(Gauge::Loss).is_nan());
    }

    #[test]
    fn prometheus_validator_rejects_malformed_documents() {
        assert!(validate_prometheus("").is_err());
        assert!(
            validate_prometheus("# TYPE wp_train_loss gauge\n").is_err(),
            "no samples"
        );
        assert!(
            validate_prometheus("wp_train_loss{rank=\"0\"} 1.0\n").is_err(),
            "sample precedes TYPE"
        );
        assert!(
            validate_prometheus("# TYPE nope counter\nnope{rank=\"0\"} 1\n").is_err(),
            "unknown metric"
        );
        let dup = "# TYPE wp_train_loss gauge\n\
                   wp_train_loss{rank=\"0\"} 1.0\nwp_train_loss{rank=\"0\"} 2.0\n";
        assert!(validate_prometheus(dup).is_err(), "duplicate sample");
        // Non-cumulative bucket series.
        let bad_hist = "# TYPE wp_train_fwd_ns histogram\n\
            wp_train_fwd_ns_bucket{rank=\"0\",le=\"1\"} 5\n\
            wp_train_fwd_ns_bucket{rank=\"0\",le=\"3\"} 2\n\
            wp_train_fwd_ns_bucket{rank=\"0\",le=\"+Inf\"} 5\n\
            wp_train_fwd_ns_sum{rank=\"0\"} 9\n\
            wp_train_fwd_ns_count{rank=\"0\"} 5\n";
        let err = validate_prometheus(bad_hist).unwrap_err();
        assert!(err.contains("cumulative"), "{err}");
        // +Inf bucket disagrees with count.
        let bad_count = "# TYPE wp_train_fwd_ns histogram\n\
            wp_train_fwd_ns_bucket{rank=\"0\",le=\"+Inf\"} 4\n\
            wp_train_fwd_ns_sum{rank=\"0\"} 9\n\
            wp_train_fwd_ns_count{rank=\"0\"} 5\n";
        let err = validate_prometheus(bad_count).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }

    #[test]
    fn json_validator_rejects_malformed_documents() {
        assert!(validate_json("").is_err());
        assert!(validate_json("{}").is_err(), "missing version");
        assert!(
            validate_json("{\"wp_metrics\":2,\"ranks\":[]}").is_err(),
            "bad version"
        );
        assert!(
            validate_json("{\"wp_metrics\":1,\"ranks\":[]}").is_err(),
            "no ranks"
        );
        let bad_bucket = "{\"wp_metrics\":1,\"ranks\":[{\"rank\":0,\
            \"counters\":{},\"gauges\":{},\"histograms\":{\
            \"wp_train_fwd_ns\":{\"count\":3,\"sum\":9,\"buckets\":[[1,1]]}}}]}";
        let err = validate_json(bad_bucket).unwrap_err();
        assert!(err.contains("count says 3"), "{err}");
        assert!(validate_json("{\"wp_metrics\":1,\"ranks\":[{\"rank\":0").is_err());
    }

    #[test]
    fn bucket_bound_labels_invert() {
        for i in 0..HIST_BUCKETS - 1 {
            let le = bucket_upper_bound(i).to_string();
            assert_eq!(le_to_bucket(&le), Some(i), "le {le}");
        }
        assert_eq!(le_to_bucket("+Inf"), Some(HIST_BUCKETS - 1));
        assert_eq!(le_to_bucket("2"), None, "2 is not a 2^i-1 bound");
        assert_eq!(le_to_bucket("x"), None);
    }

    #[test]
    fn empty_world_exports_but_fails_validation() {
        let snap = MetricsSnapshot::empty(0);
        assert!(validate_prometheus(&export_prometheus(&snap)).is_err());
        assert!(validate_json(&export_json(&snap)).is_err());
    }

    #[test]
    fn metric_names_need_no_json_escaping() {
        for c in Counter::ALL {
            assert!(json_escape_ascii(c.name()));
        }
        for g in Gauge::ALL {
            assert!(json_escape_ascii(g.name()));
        }
        for h in Hist::ALL {
            assert!(json_escape_ascii(h.name()));
        }
    }
}
