//! Property tests for the exporters: for arbitrary registry contents, the
//! Prometheus and JSON documents must validate under their own strict
//! parsers, and parse-back must reconstruct the snapshot exactly —
//! counters and histogram sums to the bit (`u64`), gauges to the bit for
//! every finite value (shortest-round-trip `Display`). The hex line codec
//! the multi-process launcher ships snapshots over gets the same treatment.

use proptest::prelude::*;
use wp_metrics::{
    export_json, export_prometheus, parse_json, parse_prometheus, validate_json,
    validate_prometheus, Counter, Gauge, Hist, HistSnapshot, MetricsSnapshot, RankSnapshot,
    HIST_BUCKETS,
};

/// Deterministic splitmix64 — fills snapshots from one seed without
/// depending on any RNG crate's distribution details.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn arbitrary_snapshot(seed: u64, ranks: usize, dense: bool) -> MetricsSnapshot {
    let mut s = seed;
    let mut snap = MetricsSnapshot::empty(ranks);
    for r in &mut snap.ranks {
        for c in r.counters.iter_mut() {
            // Mix tiny and huge values; exercise > 2^53 (f64-unsafe) often.
            *c = match splitmix(&mut s) % 4 {
                0 => 0,
                1 => splitmix(&mut s) % 100,
                2 => splitmix(&mut s) >> (splitmix(&mut s) % 40),
                _ => splitmix(&mut s),
            };
        }
        for g in r.gauges.iter_mut() {
            let bits = splitmix(&mut s);
            let v = f64::from_bits(bits);
            // Finite values only: NaN breaks equality, and infinities are
            // covered by a dedicated unit test.
            *g = if v.is_finite() {
                v
            } else {
                (bits >> 11) as f64
            };
        }
        for h in r.hists.iter_mut() {
            let observations = if dense {
                40
            } else {
                splitmix(&mut s) as usize % 8
            };
            let mut hist = HistSnapshot::default();
            for _ in 0..observations {
                let shift = splitmix(&mut s) % 64;
                let bucket = wp_metrics_bucket(splitmix(&mut s) >> shift);
                hist.buckets[bucket] += 1;
                hist.count += 1;
            }
            hist.sum = splitmix(&mut s); // sum is independent of buckets
            *h = hist;
        }
    }
    snap
}

/// The crate's bucket rule, restated so the test does not depend on
/// private internals: 0 → 0, else min(64 − leading_zeros, 63).
fn wp_metrics_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prometheus_roundtrips_exactly(seed in 0u64..u64::MAX, ranks in 1usize..5) {
        let snap = arbitrary_snapshot(seed, ranks, seed % 3 == 0);
        let text = export_prometheus(&snap);
        let stats = validate_prometheus(&text).expect("export must validate");
        prop_assert_eq!(stats.ranks, ranks);
        prop_assert_eq!(stats.counters, Counter::COUNT);
        prop_assert_eq!(stats.gauges, Gauge::COUNT);
        prop_assert_eq!(stats.histograms, Hist::COUNT);
        let (back, _) = parse_prometheus(&text).expect("export must parse");
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn json_roundtrips_exactly(seed in 0u64..u64::MAX, ranks in 1usize..5) {
        let snap = arbitrary_snapshot(seed, ranks, seed % 3 == 1);
        let text = export_json(&snap);
        let stats = validate_json(&text).expect("export must validate");
        prop_assert_eq!(stats.ranks, ranks);
        let (back, _) = parse_json(&text).expect("export must parse");
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn line_codec_roundtrips_exactly(seed in 0u64..u64::MAX, ranks in 1usize..5) {
        let snap = arbitrary_snapshot(seed, ranks, false);
        for r in &snap.ranks {
            let line = r.to_line();
            prop_assert!(!line.contains('\n'));
            let back = RankSnapshot::from_line(&line).expect("line must parse");
            prop_assert_eq!(&back, r);
        }
    }

    #[test]
    fn truncated_documents_never_parse_silently(seed in 0u64..u64::MAX) {
        let snap = arbitrary_snapshot(seed, 2, true);
        // Cutting a JSON document anywhere inside must fail, not yield a
        // quietly different snapshot.
        let json = export_json(&snap);
        let cut = json.len() / 2;
        prop_assert!(parse_json(&json[..cut]).is_err());
        // A Prometheus doc cut mid-line must fail too (histograms lose
        // their _sum/_count tail or end on a half sample).
        let prom = export_prometheus(&snap);
        let half = &prom[..prom.len() / 2];
        match parse_prometheus(half) {
            Err(_) => {}
            Ok((back, _)) => prop_assert!(
                back != snap,
                "truncation must not reproduce the full snapshot"
            ),
        }
    }
}
