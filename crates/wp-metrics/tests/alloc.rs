//! Proof of the hot-path contract: recording a metric allocates nothing.
//!
//! A counting global allocator wraps `System` (the same harness as
//! `wp-trace`'s `tests/alloc.rs`); the test warms the handles, snapshots
//! the allocation counter, hammers every update kind — counter adds, gauge
//! stores, high-water CAS, histogram observes — and asserts the counter
//! did not move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use wp_metrics::{Counter, Gauge, Hist, MetricsRegistry};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn recording_allocates_nothing() {
    // All allocation happens here, up front.
    let registry = MetricsRegistry::new(4);
    let handles: Vec<_> = (0..4).map(|r| registry.handle(r)).collect();

    // Warm up (first clock read etc. must not be charged to the hot path).
    for m in &handles {
        let t0 = m.now_ns();
        m.observe_since(Hist::StepWallNs, t0);
        m.set_max(Gauge::ReorderDepthMax, 1.0);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..1000u64 {
        for m in &handles {
            m.add(Counter::P2pBytesSent, 4096);
            m.incr(Counter::P2pMsgsSent);
            m.add(Counter::PacingStallNs, i);
            m.set(Gauge::Loss, i as f64 * 0.5);
            m.set_max(Gauge::ReorderDepthMax, (i % 7) as f64);
            m.observe(Hist::FwdNs, i * 37);
            m.observe(Hist::BwdNs, i << (i % 50));
            let t0 = m.now_ns();
            m.observe_since(Hist::UpdateNs, t0);
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "add()/set()/set_max()/observe() must not allocate on the hot path"
    );

    // Sanity: the updates really landed.
    let snap = registry.snapshot();
    for r in &snap.ranks {
        assert_eq!(r.counter(Counter::P2pMsgsSent), 1000);
        assert_eq!(r.hist(Hist::FwdNs).count, 1000);
        assert_eq!(r.gauge(Gauge::ReorderDepthMax), 6.0);
    }
}
