//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use wp_tensor::dtype::{
    bf16_bits_to_f32, f16_bits_to_f32, f32_to_bf16_bits, f32_to_f16_bits, quantize, DType,
};
use wp_tensor::ops::{matmul_naive, matmul_nn, matmul_nt, matmul_tn, softmax_rows, RopeTable};
use wp_tensor::Tensor;

fn finite_f32() -> impl Strategy<Value = f32> {
    prop::num::f32::NORMAL | prop::num::f32::ZERO | prop::num::f32::SUBNORMAL
}

proptest! {
    #[test]
    fn f16_roundtrip_is_idempotent(x in finite_f32()) {
        let once = quantize(x, DType::F16);
        let twice = quantize(once, DType::F16);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn bf16_roundtrip_is_idempotent(x in finite_f32()) {
        let once = quantize(x, DType::BF16);
        let twice = quantize(once, DType::BF16);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn f16_preserves_sign_and_order(a in -1e4f32..1e4, b in -1e4f32..1e4) {
        let (qa, qb) = (quantize(a, DType::F16), quantize(b, DType::F16));
        if a <= b {
            prop_assert!(qa <= qb, "quantization must be monotone: {a}->{qa}, {b}->{qb}");
        }
        if a != 0.0 {
            prop_assert_eq!(qa.is_sign_negative(), a.is_sign_negative());
        }
    }

    #[test]
    fn f16_relative_error_bounded(x in 1e-3f32..6e4) {
        let q = quantize(x, DType::F16);
        prop_assert!(((q - x) / x).abs() <= 2f32.powi(-11) + 1e-9);
    }

    #[test]
    fn f16_decode_encode_identity_on_valid_bits(bits in 0u16..0x7C00) {
        // Every finite positive half value must survive a decode/encode trip.
        let x = f16_bits_to_f32(bits);
        prop_assert_eq!(f32_to_f16_bits(x), bits);
    }

    #[test]
    fn bf16_decode_encode_identity_on_valid_bits(bits in 0u16..0x7F80) {
        let x = bf16_bits_to_f32(bits);
        prop_assert_eq!(f32_to_bf16_bits(x), bits);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_matches_naive(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
        let a = Tensor::rand_uniform([m * k], -1.0, 1.0, seed).into_vec();
        let b = Tensor::rand_uniform([k * n], -1.0, 1.0, seed + 1).into_vec();
        let mut c1 = vec![0.0; m * n];
        matmul_nn(&mut c1, &a, &b, m, k, n);
        let mut c2 = vec![0.0; m * n];
        matmul_naive(&mut c2, &a, &b, m, k, n);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_is_linear_in_a(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        // C(A + A') = C(A) + C(A')
        let a1 = Tensor::rand_uniform([m * k], -1.0, 1.0, seed).into_vec();
        let a2 = Tensor::rand_uniform([m * k], -1.0, 1.0, seed + 1).into_vec();
        let b = Tensor::rand_uniform([k * n], -1.0, 1.0, seed + 2).into_vec();
        let sum: Vec<f32> = a1.iter().zip(&a2).map(|(x, y)| x + y).collect();
        let mut c_sum = vec![0.0; m * n];
        matmul_nn(&mut c_sum, &sum, &b, m, k, n);
        let mut c_sep = vec![0.0; m * n];
        matmul_nn(&mut c_sep, &a1, &b, m, k, n);
        matmul_nn(&mut c_sep, &a2, &b, m, k, n);
        for (x, y) in c_sum.iter().zip(&c_sep) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn nt_and_tn_are_transposed_views_of_nn(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        let a = Tensor::rand_uniform([m * k], -1.0, 1.0, seed).into_vec();
        let b = Tensor::rand_uniform([k * n], -1.0, 1.0, seed + 1).into_vec();
        let mut c_ref = vec![0.0; m * n];
        matmul_nn(&mut c_ref, &a, &b, m, k, n);

        // B as [n, k] for nt.
        let mut bt = vec![0.0; n * k];
        for i in 0..k {
            for j in 0..n {
                bt[j * k + i] = b[i * n + j];
            }
        }
        let mut c_nt = vec![0.0; m * n];
        matmul_nt(&mut c_nt, &a, &bt, m, k, n);
        // A as [k, m] for tn.
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for j in 0..k {
                at[j * m + i] = a[i * k + j];
            }
        }
        let mut c_tn = vec![0.0; m * n];
        matmul_tn(&mut c_tn, &at, &b, m, k, n);
        for i in 0..m * n {
            prop_assert!((c_nt[i] - c_ref[i]).abs() < 1e-4, "nt mismatch");
            prop_assert!((c_tn[i] - c_ref[i]).abs() < 1e-4, "tn mismatch");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_shift_invariant(
        rows in 1usize..5,
        cols in 1usize..9,
        shift in -50.0f32..50.0,
        seed in 0u64..1000
    ) {
        let x = Tensor::rand_uniform([rows * cols], -5.0, 5.0, seed).into_vec();
        let mut a = x.clone();
        softmax_rows(&mut a, rows, cols);
        for row in a.chunks(cols) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
        }
        let mut b: Vec<f32> = x.iter().map(|v| v + shift).collect();
        softmax_rows(&mut b, rows, cols);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn rope_preserves_norm_and_inverts(
        pos in 0usize..32,
        seed in 0u64..1000
    ) {
        let d = 8;
        let table = RopeTable::new(d, 32, 10000.0);
        let x0 = Tensor::rand_uniform([d], -2.0, 2.0, seed).into_vec();
        let mut x = x0.clone();
        table.rotate(&mut x, pos, 1.0);
        let n0: f32 = x0.iter().map(|v| v * v).sum();
        let n1: f32 = x.iter().map(|v| v * v).sum();
        prop_assert!((n0 - n1).abs() < 1e-3);
        table.rotate(&mut x, pos, -1.0);
        for (a, b) in x.iter().zip(&x0) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }
}
