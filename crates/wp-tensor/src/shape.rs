//! Shapes for dense, contiguous, row-major tensors.

/// A tensor shape: the extent of each dimension, outermost first.
///
/// Tensors in this stack are always contiguous and row-major, so a shape
/// fully determines the memory layout.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Build a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Dimension extents, outermost first.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar shape).
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `i`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if `idx` has the wrong rank or any coordinate is out of range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.0.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.0.len()).rev() {
            assert!(idx[i] < self.0[i], "index {idx:?} out of bounds for {self}");
            off += idx[i] * stride;
            stride *= self.0[i];
        }
        off
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
        let scalar = Shape::new(&[]);
        assert_eq!(scalar.numel(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[1, 0, 2]), 14);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_bounds_checked() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[4, 8]).to_string(), "[4, 8]");
    }
}
