//! The dense tensor type.
//!
//! Compute always happens in `f32`; 16-bit storage formats are applied by
//! quantizing in place (see [`crate::dtype`]). Tensors are contiguous and
//! row-major, which keeps every kernel a straight loop over slices — the
//! layout a cache-blocked CPU kernel wants.

use crate::dtype::{quantize_slice, DType};
use crate::shape::Shape;
use rand::distr::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A dense, contiguous, row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor of the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// Tensor wrapping an existing buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Deterministic N(0, std²) initialisation from a seed.
    ///
    /// Uses Box–Muller over a seeded PRNG so every rank of a distributed job
    /// can materialise identical weights without communicating.
    pub fn randn(shape: impl Into<Shape>, std: f32, seed: u64) -> Self {
        let shape = shape.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let unif = Uniform::new(f32::EPSILON, 1.0f32).expect("valid range");
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = unif.sample(&mut rng);
            let u2: f32 = unif.sample(&mut rng);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape, data }
    }

    /// Uniform init in `[lo, hi)` from a seed.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, seed: u64) -> Self {
        let shape = shape.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let unif = Uniform::new(lo, hi).expect("valid range");
        let data = (0..shape.numel()).map(|_| unif.sample(&mut rng)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the backing buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Set the element at a multi-dimensional index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = v;
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "reshape to {shape} changes element count"
        );
        self.shape = shape;
        self
    }

    /// `self += other`, elementwise.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other`, elementwise (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by a scalar.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn zero_(&mut self) {
        self.data.fill(0.0);
    }

    /// Quantize the buffer in place through a storage format.
    pub fn quantize_(&mut self, dtype: DType) {
        quantize_slice(&mut self.data, dtype);
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest absolute element (0 for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// L2 norm (f64 accumulator).
    pub fn l2_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// True if any element is NaN or infinite. Drives dynamic loss scaling.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Maximum absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros([2, 3]);
        assert_eq!(t.numel(), 6);
        t.set(&[1, 2], 5.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.data()[5], 5.0);
    }

    #[test]
    fn randn_is_deterministic_and_normal_ish() {
        let a = Tensor::randn([1000], 1.0, 42);
        let b = Tensor::randn([1000], 1.0, 42);
        assert_eq!(a, b, "same seed must give identical tensors");
        let c = Tensor::randn([1000], 1.0, 43);
        assert_ne!(a, c, "different seeds must differ");
        let mean = a.mean();
        assert!(mean.abs() < 0.15, "mean {mean} too far from 0");
        let var: f32 = a
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 999.0;
        assert!((var - 1.0).abs() < 0.2, "variance {var} too far from 1");
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::full([4], 1.0);
        let b = Tensor::full([4], 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0; 4]);
        a.scale(2.0);
        assert_eq!(a.data(), &[4.0; 4]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[6.0; 4]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.abs_max(), 4.0);
        assert!((t.l2_norm() - 30f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros([3]);
        assert!(!t.has_non_finite());
        t.set(&[1], f32::NAN);
        assert!(t.has_non_finite());
        t.set(&[1], f32::INFINITY);
        assert!(t.has_non_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect());
        let r = t.clone().reshape([3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        Tensor::zeros([2, 3]).reshape([7]);
    }

    #[test]
    fn quantize_in_place() {
        let mut t = Tensor::from_vec([2], vec![1.0 + 2f32.powi(-12), -3.3]);
        t.quantize_(DType::F16);
        assert_eq!(t.data()[0], 1.0);
    }
}
