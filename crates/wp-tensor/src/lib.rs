//! # wp-tensor
//!
//! Dense CPU tensor kernels for the WeiPipe training stack.
//!
//! This crate is the computational substrate every other crate sits on:
//!
//! * [`Tensor`] — contiguous, row-major `f32` tensors with deterministic
//!   seeded initialisation (so every rank of a distributed job can build
//!   identical weights without communication).
//! * [`dtype`] — software IEEE binary16 / bfloat16 with round-to-nearest-even
//!   conversions, used to emulate the paper's mixed-precision storage
//!   (fp16 weights/activations/weight-grads, bf16 activation-grads, fp32
//!   optimizer state) on hardware without native half floats.
//! * [`ops`] — the kernels a Llama-style transformer needs: cache-blocked
//!   matmuls in the three layouts (`nn`, `nt`, `tn`) that cover forward,
//!   data-gradient (*B pass*) and weight-gradient (*W pass*) computation,
//!   RMSNorm, RoPE, SiLU/SwiGLU, row softmax, embedding gather/scatter and a
//!   fused softmax-cross-entropy.
//!
//! Kernels take raw `&[f32]` slices plus dimensions so callers can operate on
//! sub-ranges of flat arenas — the layout WeiPipe ships over the wire.

#![warn(missing_docs)]

pub mod dtype;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use dtype::DType;
pub use shape::Shape;
pub use tensor::Tensor;
