//! Shared parallel-dispatch helpers for the kernels.
//!
//! Every row-independent kernel in this module tree parallelises the same
//! way: split the row range into at most a few bands per pool thread, run
//! each band serially inside one task, and keep the per-row arithmetic
//! order untouched — which makes the parallel result bit-identical to the
//! sequential one (`rayon::force_sequential` runs the very same band
//! decomposition inline).

/// Below this many scalar operations a kernel stays sequential: waking the
/// pool costs more than the work.
pub const PAR_MIN_WORK: usize = 1 << 14;

/// Run `f(r0, r1)` over disjoint bands covering `0..rows`, in parallel.
/// Bands are contiguous and at most `4 × pool-width` in number, so each
/// task amortises dispatch over many rows.
pub fn par_row_bands(rows: usize, f: impl Fn(usize, usize) + Sync) {
    if rows == 0 {
        return;
    }
    let threads = rayon::current_num_threads().max(1);
    let bands = (4 * threads).min(rows);
    let per = rows.div_ceil(bands);
    let n = rows.div_ceil(per);
    rayon::par_indices(n, move |i| {
        let s = i * per;
        f(s, (s + per).min(rows));
    });
}

/// Run `f(t)` for `t in 0..n` across the pool (inline when the pool has
/// width 1 or the caller is inside `rayon::force_sequential`). Thin façade
/// over the pool so downstream crates don't need a direct `rayon` dep.
pub fn par_tasks(n: usize, f: impl Fn(usize) + Sync) {
    rayon::par_indices(n, f);
}

/// Wrapper making a raw mutable base pointer shareable across pool tasks.
///
/// Soundness comes entirely from the caller: every task must touch a
/// disjoint index range of the underlying buffer.
pub struct RawMut<T>(pub *mut T);
unsafe impl<T> Send for RawMut<T> {}
unsafe impl<T> Sync for RawMut<T> {}

impl<T> RawMut<T> {
    /// Borrow `len` elements starting at `start`.
    ///
    /// # Safety
    /// `start + len` must be in bounds and no concurrently live slice may
    /// overlap `[start, start + len)`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice(&self, start: usize, len: usize) -> &mut [T] {
        unsafe { std::slice::from_raw_parts_mut(self.0.add(start), len) }
    }
}
