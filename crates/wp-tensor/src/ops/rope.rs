//! Rotary positional embeddings (RoPE), as used by Llama.
//!
//! Each attention head's feature vector of width `d` is treated as `d/2`
//! complex pairs `(x[2i], x[2i+1])`; position `p` rotates pair `i` by angle
//! `p · θ^(−2i/d)`. The rotation is orthogonal, so the backward pass is the
//! forward rotation with the angle negated.

/// Precomputed cos/sin tables for all (position, pair) combinations.
#[derive(Debug, Clone)]
pub struct RopeTable {
    /// `cos[p * (d/2) + i]`
    cos: Vec<f32>,
    /// `sin[p * (d/2) + i]`
    sin: Vec<f32>,
    head_dim: usize,
    max_pos: usize,
}

impl RopeTable {
    /// Build tables for positions `0..max_pos` and an (even) head dimension.
    pub fn new(head_dim: usize, max_pos: usize, theta: f32) -> Self {
        assert!(head_dim.is_multiple_of(2), "RoPE head_dim must be even");
        let half = head_dim / 2;
        let mut cos = Vec::with_capacity(max_pos * half);
        let mut sin = Vec::with_capacity(max_pos * half);
        for p in 0..max_pos {
            for i in 0..half {
                let freq = 1.0 / theta.powf(2.0 * i as f32 / head_dim as f32);
                let angle = p as f32 * freq;
                cos.push(angle.cos());
                sin.push(angle.sin());
            }
        }
        RopeTable {
            cos,
            sin,
            head_dim,
            max_pos,
        }
    }

    /// Head dimension the table was built for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Number of positions covered.
    pub fn max_pos(&self) -> usize {
        self.max_pos
    }

    /// Rotate one head vector `x` (length `head_dim`) in place for position
    /// `pos`. `dir = +1` applies the forward rotation, `dir = -1` the inverse
    /// (used by the backward pass).
    #[inline]
    pub fn rotate(&self, x: &mut [f32], pos: usize, dir: f32) {
        debug_assert_eq!(x.len(), self.head_dim);
        debug_assert!(pos < self.max_pos, "position {pos} beyond table");
        let half = self.head_dim / 2;
        let base = pos * half;
        for i in 0..half {
            let c = self.cos[base + i];
            let s = self.sin[base + i] * dir;
            let a = x[2 * i];
            let b = x[2 * i + 1];
            x[2 * i] = a * c - b * s;
            x[2 * i + 1] = a * s + b * c;
        }
    }

    /// Apply RoPE to a `[seq, heads, head_dim]` buffer in place (forward).
    pub fn apply_forward(&self, x: &mut [f32], seq: usize, heads: usize) {
        self.apply(x, seq, heads, 1.0);
    }

    /// Apply the inverse rotation (backward pass for gradients).
    pub fn apply_backward(&self, x: &mut [f32], seq: usize, heads: usize) {
        self.apply(x, seq, heads, -1.0);
    }

    fn apply(&self, x: &mut [f32], seq: usize, heads: usize, dir: f32) {
        assert_eq!(x.len(), seq * heads * self.head_dim);
        let stride = heads * self.head_dim;
        let one_pos = |row: &mut [f32], p: usize| {
            for h in 0..heads {
                let o = h * self.head_dim;
                self.rotate(&mut row[o..o + self.head_dim], p, dir);
            }
        };
        if x.len() < super::par::PAR_MIN_WORK {
            for (p, row) in x.chunks_mut(stride).enumerate() {
                one_pos(row, p);
            }
            return;
        }
        // Positions are independent: split the sequence across the pool.
        let xp = super::par::RawMut(x.as_mut_ptr());
        super::par::par_row_bands(seq, move |p0, p1| {
            for p in p0..p1 {
                one_pos(unsafe { xp.slice(p * stride, stride) }, p);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn position_zero_is_identity() {
        let table = RopeTable::new(8, 4, 10000.0);
        let mut x: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let orig = x.clone();
        table.rotate(&mut x, 0, 1.0);
        assert_eq!(x, orig);
    }

    #[test]
    fn rotation_preserves_norm() {
        let table = RopeTable::new(16, 64, 10000.0);
        let x0 = Tensor::randn([16], 1.0, 31).into_vec();
        for pos in [1usize, 7, 63] {
            let mut x = x0.clone();
            table.rotate(&mut x, pos, 1.0);
            let n0: f32 = x0.iter().map(|v| v * v).sum();
            let n1: f32 = x.iter().map(|v| v * v).sum();
            assert!((n0 - n1).abs() < 1e-4, "norm changed at pos {pos}");
        }
    }

    #[test]
    fn backward_inverts_forward() {
        let table = RopeTable::new(8, 32, 10000.0);
        let x0 = Tensor::randn([4 * 2 * 8], 1.0, 32).into_vec();
        let mut x = x0.clone();
        table.apply_forward(&mut x, 4, 2);
        table.apply_backward(&mut x, 4, 2);
        for (a, b) in x.iter().zip(&x0) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn relative_position_property() {
        // RoPE's defining property: <rot_p(q), rot_k(k)> depends only on p−k.
        let d = 8;
        let table = RopeTable::new(d, 64, 10000.0);
        let q0 = Tensor::randn([d], 1.0, 33).into_vec();
        let k0 = Tensor::randn([d], 1.0, 34).into_vec();
        let dot_at = |p: usize, k: usize| -> f32 {
            let mut q = q0.clone();
            let mut kk = k0.clone();
            table.rotate(&mut q, p, 1.0);
            table.rotate(&mut kk, k, 1.0);
            q.iter().zip(&kk).map(|(a, b)| a * b).sum()
        };
        let d1 = dot_at(5, 2);
        let d2 = dot_at(13, 10);
        let d3 = dot_at(40, 37);
        assert!(
            (d1 - d2).abs() < 1e-3 && (d2 - d3).abs() < 1e-3,
            "{d1} {d2} {d3}"
        );
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_head_dim_rejected() {
        RopeTable::new(7, 4, 10000.0);
    }
}
