//! Fused softmax + cross-entropy loss for next-token prediction.

/// Mean cross-entropy over tokens, with the gradient w.r.t. logits computed
/// in the same pass.
///
/// * `logits`: `[tokens, vocab]` — consumed read-only.
/// * `targets`: `[tokens]` class indices; an index of `u32::MAX` marks a
///   padded position that contributes neither loss nor gradient.
/// * `dlogits`: `[tokens, vocab]` — *overwritten* with `∂(mean CE)/∂logits`.
///
/// Returns the mean loss over non-ignored tokens (0 if all are ignored).
pub fn cross_entropy_forward_backward(
    dlogits: &mut [f32],
    logits: &[f32],
    targets: &[u32],
    vocab: usize,
) -> f32 {
    let tokens = targets.len();
    assert_eq!(logits.len(), tokens * vocab);
    assert_eq!(dlogits.len(), tokens * vocab);
    let active = targets.iter().filter(|&&t| t != u32::MAX).count();
    if active == 0 {
        dlogits.fill(0.0);
        return 0.0;
    }
    let inv_n = 1.0 / active as f32;
    let mut total = 0.0f64;
    for (t, &tgt) in targets.iter().enumerate() {
        let row = &logits[t * vocab..(t + 1) * vocab];
        let drow = &mut dlogits[t * vocab..(t + 1) * vocab];
        if tgt == u32::MAX {
            drow.fill(0.0);
            continue;
        }
        let tgt = tgt as usize;
        assert!(tgt < vocab, "target {tgt} out of vocab {vocab}");
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for (d, &v) in drow.iter_mut().zip(row) {
            let e = (v - max).exp();
            *d = e;
            sum += e;
        }
        let inv_sum = 1.0 / sum;
        for d in drow.iter_mut() {
            *d *= inv_sum * inv_n;
        }
        // p_tgt before the subtraction: recover from the scaled value.
        let p_tgt = drow[tgt] / inv_n;
        drow[tgt] -= inv_n;
        total += -(p_tgt.max(1e-30).ln()) as f64;
    }
    (total / active as f64) as f32
}

/// Loss only (no gradient); used for evaluation loops.
pub fn cross_entropy_loss(logits: &[f32], targets: &[u32], vocab: usize) -> f32 {
    let tokens = targets.len();
    assert_eq!(logits.len(), tokens * vocab);
    let mut total = 0.0f64;
    let mut active = 0usize;
    for (t, &tgt) in targets.iter().enumerate() {
        if tgt == u32::MAX {
            continue;
        }
        active += 1;
        let tgt = tgt as usize;
        let row = &logits[t * vocab..(t + 1) * vocab];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        total += (lse - row[tgt]) as f64;
    }
    if active == 0 {
        0.0
    } else {
        (total / active as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn uniform_logits_give_log_vocab() {
        let vocab = 8;
        let logits = vec![0.0; 2 * vocab];
        let targets = [3u32, 5];
        let mut d = vec![0.0; logits.len()];
        let loss = cross_entropy_forward_backward(&mut d, &logits, &targets, vocab);
        assert!((loss - (vocab as f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_near_zero_loss() {
        let vocab = 4;
        let mut logits = vec![0.0; vocab];
        logits[2] = 50.0;
        let mut d = vec![0.0; vocab];
        let loss = cross_entropy_forward_backward(&mut d, &logits, &[2], vocab);
        assert!(loss < 1e-6);
    }

    #[test]
    fn gradient_matches_numeric() {
        let vocab = 6;
        let tokens = 3;
        let logits = Tensor::randn([tokens * vocab], 1.0, 41).into_vec();
        let targets = [1u32, 4, 0];
        let mut d = vec![0.0; logits.len()];
        cross_entropy_forward_backward(&mut d, &logits, &targets, vocab);
        let h = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp[i] += h;
            let mut lm = logits.clone();
            lm[i] -= h;
            let num = (cross_entropy_loss(&lp, &targets, vocab)
                - cross_entropy_loss(&lm, &targets, vocab))
                / (2.0 * h);
            assert!((d[i] - num).abs() < 1e-3, "d[{i}] {} vs {num}", d[i]);
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let vocab = 5;
        let logits = Tensor::randn([2 * vocab], 1.0, 42).into_vec();
        let mut d = vec![0.0; logits.len()];
        cross_entropy_forward_backward(&mut d, &logits, &[0, 3], vocab);
        for row in d.chunks(vocab) {
            let s: f32 = row.iter().sum();
            assert!(
                s.abs() < 1e-6,
                "softmax-CE grad rows must sum to 0, got {s}"
            );
        }
    }

    #[test]
    fn ignored_tokens_contribute_nothing() {
        let vocab = 4;
        let logits = Tensor::randn([2 * vocab], 1.0, 43).into_vec();
        let mut d_all = vec![0.0; logits.len()];
        let loss_one = cross_entropy_forward_backward(&mut d_all, &logits, &[1, u32::MAX], vocab);
        // Same as computing over only the first token.
        let mut d_first = vec![0.0; vocab];
        let loss_first =
            cross_entropy_forward_backward(&mut d_first, &logits[..vocab], &[1], vocab);
        assert!((loss_one - loss_first).abs() < 1e-6);
        assert_eq!(&d_all[vocab..], &vec![0.0; vocab][..]);
    }

    #[test]
    fn all_ignored_is_zero() {
        let vocab = 4;
        let logits = vec![1.0; vocab];
        let mut d = vec![9.0; vocab];
        let loss = cross_entropy_forward_backward(&mut d, &logits, &[u32::MAX], vocab);
        assert_eq!(loss, 0.0);
        assert_eq!(d, vec![0.0; vocab]);
    }
}
