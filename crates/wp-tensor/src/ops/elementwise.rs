//! Elementwise activation functions and their derivatives.
//!
//! The slice kernels split their (order-independent, per-index) work into
//! contiguous spans across the pool; each span computes exactly what the
//! sequential loop would, so results are bit-identical either way.

use super::par::{par_row_bands, RawMut, PAR_MIN_WORK};

/// Run `f(span_start, out_span)` over disjoint contiguous spans of `out`,
/// in parallel when the buffer is large enough to pay for dispatch.
fn par_spans(out: &mut [f32], f: impl Fn(usize, &mut [f32]) + Sync) {
    if out.len() < PAR_MIN_WORK {
        f(0, out);
        return;
    }
    let n = out.len();
    let op = RawMut(out.as_mut_ptr());
    par_row_bands(n, move |s, e| {
        f(s, unsafe { op.slice(s, e - s) });
    });
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// SiLU (a.k.a. swish): `x * sigmoid(x)`. The activation in Llama's FFN.
#[inline]
pub fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// Derivative of SiLU with respect to its input.
#[inline]
pub fn silu_grad(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 + x * (1.0 - s))
}

/// `out[i] = silu(x[i])`.
pub fn silu_forward(out: &mut [f32], x: &[f32]) {
    assert_eq!(out.len(), x.len());
    par_spans(out, |s, o| {
        let n = o.len();
        for (o, &v) in o.iter_mut().zip(&x[s..s + n]) {
            *o = silu(v);
        }
    });
}

/// `dx[i] += dy[i] * silu'(x[i])`.
pub fn silu_backward(dx: &mut [f32], dy: &[f32], x: &[f32]) {
    assert_eq!(dx.len(), dy.len());
    assert_eq!(dx.len(), x.len());
    par_spans(dx, |s, g| {
        let n = g.len();
        for ((g, &d), &v) in g.iter_mut().zip(&dy[s..s + n]).zip(&x[s..s + n]) {
            *g += d * silu_grad(v);
        }
    });
}

/// SwiGLU gating: `out = silu(gate) * up`, the elementwise half of Llama's
/// FFN between the two input projections and the down projection.
pub fn swiglu_forward(out: &mut [f32], gate: &[f32], up: &[f32]) {
    assert_eq!(out.len(), gate.len());
    assert_eq!(out.len(), up.len());
    par_spans(out, |s, o| {
        let n = o.len();
        for ((o, &g), &u) in o.iter_mut().zip(&gate[s..s + n]).zip(&up[s..s + n]) {
            *o = silu(g) * u;
        }
    });
}

/// Backward of [`swiglu_forward`]: accumulates into `dgate` and `dup`.
pub fn swiglu_backward(dgate: &mut [f32], dup: &mut [f32], dy: &[f32], gate: &[f32], up: &[f32]) {
    let n = dy.len();
    assert_eq!(dgate.len(), n);
    assert_eq!(dup.len(), n);
    assert_eq!(gate.len(), n);
    assert_eq!(up.len(), n);
    let dupp = RawMut(dup.as_mut_ptr());
    par_spans(dgate, move |s, dg| {
        let m = dg.len();
        let du = unsafe { dupp.slice(s, m) };
        for i in 0..m {
            dg[i] += dy[s + i] * up[s + i] * silu_grad(gate[s + i]);
            du[i] += dy[s + i] * silu(gate[s + i]);
        }
    });
}

/// Hadamard product `out[i] = a[i] * b[i]`.
pub fn mul(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(out.len(), a.len());
    assert_eq!(out.len(), b.len());
    par_spans(out, |s, o| {
        let n = o.len();
        for ((o, &x), &y) in o.iter_mut().zip(&a[s..s + n]).zip(&b[s..s + n]) {
            *o = x * y;
        }
    });
}

/// `out[i] = a[i] + b[i]` (residual connections).
pub fn add(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(out.len(), a.len());
    assert_eq!(out.len(), b.len());
    par_spans(out, |s, o| {
        let n = o.len();
        for ((o, &x), &y) in o.iter_mut().zip(&a[s..s + n]).zip(&b[s..s + n]) {
            *o = x + y;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn sigmoid_basics() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        // Stability: no NaN at extremes.
        assert!(sigmoid(-1e4).is_finite() && sigmoid(1e4).is_finite());
    }

    #[test]
    fn silu_grad_matches_numeric() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let g = silu_grad(x);
            let num = numeric_grad(silu, x);
            assert!((g - num).abs() < 1e-3, "silu'({x}): {g} vs {num}");
        }
    }

    #[test]
    fn swiglu_backward_matches_numeric() {
        let gate = [0.3f32, -1.2, 2.0];
        let up = [1.5f32, 0.7, -0.4];
        let dy = [1.0f32, 1.0, 1.0];
        let mut dgate = [0.0f32; 3];
        let mut dup = [0.0f32; 3];
        swiglu_backward(&mut dgate, &mut dup, &dy, &gate, &up);
        for i in 0..3 {
            let u = up[i];
            let ng = numeric_grad(|g| silu(g) * u, gate[i]);
            assert!((dgate[i] - ng).abs() < 1e-3, "dgate[{i}]");
            let g = gate[i];
            let nu = numeric_grad(|uu| silu(g) * uu, up[i]);
            assert!((dup[i] - nu).abs() < 1e-3, "dup[{i}]");
        }
    }

    #[test]
    fn backward_accumulates() {
        let x = [1.0f32];
        let dy = [2.0f32];
        let mut dx = [10.0f32];
        silu_backward(&mut dx, &dy, &x);
        assert!((dx[0] - (10.0 + 2.0 * silu_grad(1.0))).abs() < 1e-6);
    }

    #[test]
    fn add_and_mul() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut o = [0.0f32; 2];
        add(&mut o, &a, &b);
        assert_eq!(o, [4.0, 6.0]);
        mul(&mut o, &a, &b);
        assert_eq!(o, [3.0, 8.0]);
    }
}
