//! Row softmax and its backward pass.
//!
//! Rows are independent, so both kernels split the row range across the
//! pool ([`par_row_bands`]); per-row arithmetic order is unchanged, keeping
//! the parallel result bit-identical to the sequential one.

use super::par::{par_row_bands, RawMut, PAR_MIN_WORK};

/// In-place, numerically stable softmax over each row of an `[rows, cols]`
/// matrix.
pub fn softmax_rows(x: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(x.len(), rows * cols);
    if x.len() < PAR_MIN_WORK {
        for row in x.chunks_mut(cols) {
            softmax_row(row);
        }
        return;
    }
    let xp = RawMut(x.as_mut_ptr());
    par_row_bands(rows, move |r0, r1| {
        let band = unsafe { xp.slice(r0 * cols, (r1 - r0) * cols) };
        for row in band.chunks_mut(cols) {
            softmax_row(row);
        }
    });
}

/// In-place softmax of a single row.
#[inline]
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    if !max.is_finite() {
        // All -inf (fully masked row): define softmax as uniform-zero to keep
        // downstream math finite; the caller masks the contribution anyway.
        row.fill(0.0);
        return;
    }
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Backward of row softmax: given `y = softmax(x)` and `dy`, accumulate
/// `dx += y ⊙ (dy − (dy·y))` row by row.
pub fn softmax_rows_backward(dx: &mut [f32], dy: &[f32], y: &[f32], rows: usize, cols: usize) {
    assert_eq!(dx.len(), rows * cols);
    assert_eq!(dy.len(), rows * cols);
    assert_eq!(y.len(), rows * cols);
    let one_row = |dxr: &mut [f32], r: usize| {
        let o = r * cols;
        let yr = &y[o..o + cols];
        let dyr = &dy[o..o + cols];
        let dot: f32 = yr.iter().zip(dyr).map(|(a, b)| a * b).sum();
        for j in 0..cols {
            dxr[j] += yr[j] * (dyr[j] - dot);
        }
    };
    if dx.len() < PAR_MIN_WORK {
        for r in 0..rows {
            one_row(&mut dx[r * cols..(r + 1) * cols], r);
        }
        return;
    }
    let dxp = RawMut(dx.as_mut_ptr());
    par_row_bands(rows, move |r0, r1| {
        for r in r0..r1 {
            let dxr = unsafe { dxp.slice(r * cols, cols) };
            one_row(dxr, r);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 2, 3);
        for row in x.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn stable_for_large_logits() {
        let mut x = vec![1e4f32, 1e4 + 1.0];
        softmax_rows(&mut x, 1, 2);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!(x[1] > x[0]);
    }

    #[test]
    fn fully_masked_row_is_zero() {
        let mut x = vec![f32::NEG_INFINITY; 4];
        softmax_rows(&mut x, 1, 4);
        assert_eq!(x, vec![0.0; 4]);
    }

    #[test]
    fn invariant_to_shift() {
        let mut a = vec![0.3f32, -1.0, 2.5];
        let mut b: Vec<f32> = a.iter().map(|v| v + 123.0).collect();
        softmax_rows(&mut a, 1, 3);
        softmax_rows(&mut b, 1, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_numeric() {
        let x0 = [0.5f32, -0.3, 1.2, 0.0];
        let dy = [0.7f32, -0.2, 0.1, 0.9];
        let loss = |x: &[f32]| -> f32 {
            let mut y = x.to_vec();
            softmax_rows(&mut y, 1, 4);
            y.iter().zip(&dy).map(|(a, b)| a * b).sum()
        };
        let mut y = x0.to_vec();
        softmax_rows(&mut y, 1, 4);
        let mut dx = vec![0.0f32; 4];
        softmax_rows_backward(&mut dx, &dy, &y, 1, 4);
        let h = 1e-3;
        for i in 0..4 {
            let mut xp = x0.to_vec();
            xp[i] += h;
            let mut xm = x0.to_vec();
            xm[i] -= h;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * h);
            assert!((dx[i] - num).abs() < 1e-3, "dx[{i}]: {} vs {num}", dx[i]);
        }
    }
}
