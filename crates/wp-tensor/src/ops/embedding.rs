//! Token embedding lookup and its backward scatter-add.

/// Gather rows of an embedding table: `out[t, :] = table[ids[t], :]`.
///
/// `table` is `[vocab, h]`, `out` is `[tokens, h]`.
pub fn embedding_forward(out: &mut [f32], table: &[f32], ids: &[u32], vocab: usize, h: usize) {
    assert_eq!(table.len(), vocab * h);
    assert_eq!(out.len(), ids.len() * h);
    for (t, &id) in ids.iter().enumerate() {
        let id = id as usize;
        assert!(id < vocab, "token id {id} out of vocab {vocab}");
        out[t * h..(t + 1) * h].copy_from_slice(&table[id * h..(id + 1) * h]);
    }
}

/// Backward of the lookup: `dtable[ids[t], :] += dy[t, :]`.
pub fn embedding_backward(dtable: &mut [f32], dy: &[f32], ids: &[u32], vocab: usize, h: usize) {
    assert_eq!(dtable.len(), vocab * h);
    assert_eq!(dy.len(), ids.len() * h);
    for (t, &id) in ids.iter().enumerate() {
        let id = id as usize;
        assert!(id < vocab, "token id {id} out of vocab {vocab}");
        let dst = &mut dtable[id * h..(id + 1) * h];
        let src = &dy[t * h..(t + 1) * h];
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_rows() {
        let table = vec![
            0.0, 0.1, //
            1.0, 1.1, //
            2.0, 2.1,
        ];
        let ids = [2u32, 0, 2];
        let mut out = vec![0.0; 6];
        embedding_forward(&mut out, &table, &ids, 3, 2);
        assert_eq!(out, vec![2.0, 2.1, 0.0, 0.1, 2.0, 2.1]);
    }

    #[test]
    fn scatter_add_accumulates_repeats() {
        let ids = [1u32, 1, 0];
        let dy = vec![1.0, 2.0, 10.0, 20.0, 100.0, 200.0];
        let mut dtable = vec![0.0; 4];
        embedding_backward(&mut dtable, &dy, &ids, 2, 2);
        assert_eq!(dtable, vec![100.0, 200.0, 11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_panics() {
        let table = vec![0.0; 4];
        let mut out = vec![0.0; 2];
        embedding_forward(&mut out, &table, &[5], 2, 2);
    }
}
