//! RMSNorm (the normalisation used by Llama-family models) forward and
//! backward kernels.
//!
//! For a row `x` of width `H` with learned gain `g`:
//! `y_i = g_i * x_i / rms(x)`, `rms(x) = sqrt(mean(x²) + eps)`.
//!
//! Rows are independent, so the forward pass and the `dx` half of the
//! backward pass are split across the pool in row bands with unchanged
//! per-row arithmetic (bit-identical to sequential). The `dgain` half
//! accumulates **across** rows and stays a single serial pass in the
//! original row order.

use super::par::{par_row_bands, RawMut, PAR_MIN_WORK};

/// Forward RMSNorm over each row of an `[rows, h]` matrix.
///
/// Writes normalised output to `out` and, if provided, saves the reciprocal
/// RMS per row into `inv_rms` (length `rows`) for the backward pass.
#[allow(clippy::needless_range_loop)]
pub fn rmsnorm_forward(
    out: &mut [f32],
    inv_rms: Option<&mut [f32]>,
    x: &[f32],
    gain: &[f32],
    rows: usize,
    h: usize,
    eps: f32,
) {
    assert_eq!(out.len(), rows * h);
    assert_eq!(x.len(), rows * h);
    assert_eq!(gain.len(), h);
    if let Some(ref ir) = inv_rms {
        assert_eq!(ir.len(), rows);
    }
    let one_row = |or: &mut [f32], r: usize| -> f32 {
        let xr = &x[r * h..(r + 1) * h];
        let ms = xr.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() / h as f64;
        let inv = 1.0 / (ms + eps as f64).sqrt() as f32;
        for i in 0..h {
            or[i] = gain[i] * xr[i] * inv;
        }
        inv
    };
    if out.len() < PAR_MIN_WORK {
        let mut inv_rms = inv_rms;
        for r in 0..rows {
            let inv = one_row(&mut out[r * h..(r + 1) * h], r);
            if let Some(ir) = inv_rms.as_deref_mut() {
                ir[r] = inv;
            }
        }
        return;
    }
    let op = RawMut(out.as_mut_ptr());
    let ip = inv_rms.map(|ir| RawMut(ir.as_mut_ptr()));
    par_row_bands(rows, move |r0, r1| {
        for r in r0..r1 {
            let or = unsafe { op.slice(r * h, h) };
            let inv = one_row(or, r);
            if let Some(ref ip) = ip {
                let slot = unsafe { ip.slice(r, 1) };
                slot[0] = inv;
            }
        }
    });
}

/// Backward RMSNorm.
///
/// Accumulates `dx += ∂L/∂x` and `dgain += ∂L/∂g` given the upstream `dy`,
/// the saved input `x` and the per-row `inv_rms` from the forward pass.
///
/// Derivation: with `r = inv_rms`, `y_i = g_i x_i r`, and
/// `∂r/∂x_j = -r³ x_j / H`, so
/// `dx_j = r·g_j·dy_j − (r³ x_j / H)·Σ_i dy_i g_i x_i`.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
pub fn rmsnorm_backward(
    dx: &mut [f32],
    dgain: &mut [f32],
    dy: &[f32],
    x: &[f32],
    gain: &[f32],
    inv_rms: &[f32],
    rows: usize,
    h: usize,
) {
    assert_eq!(dx.len(), rows * h);
    assert_eq!(dgain.len(), h);
    assert_eq!(dy.len(), rows * h);
    assert_eq!(x.len(), rows * h);
    assert_eq!(gain.len(), h);
    assert_eq!(inv_rms.len(), rows);
    // dx: rows are independent — parallel bands, same per-row order.
    let dx_row = |dxr: &mut [f32], r: usize| {
        let o = r * h;
        let xr = &x[o..o + h];
        let dyr = &dy[o..o + h];
        let inv = inv_rms[r];
        let mut dot = 0.0f64;
        for i in 0..h {
            dot += (dyr[i] * gain[i] * xr[i]) as f64;
        }
        let coef = inv as f64 * inv as f64 * inv as f64 * dot / h as f64;
        for i in 0..h {
            dxr[i] += inv * gain[i] * dyr[i] - (coef as f32) * xr[i];
        }
    };
    if dx.len() < PAR_MIN_WORK {
        for r in 0..rows {
            dx_row(&mut dx[r * h..(r + 1) * h], r);
        }
    } else {
        let dxp = RawMut(dx.as_mut_ptr());
        par_row_bands(rows, move |r0, r1| {
            for r in r0..r1 {
                dx_row(unsafe { dxp.slice(r * h, h) }, r);
            }
        });
    }
    // dgain accumulates across rows: keep it a serial pass in the original
    // row order so results stay bit-identical whatever the pool width.
    for r in 0..rows {
        let o = r * h;
        let xr = &x[o..o + h];
        let dyr = &dy[o..o + h];
        let inv = inv_rms[r];
        for i in 0..h {
            dgain[i] += dyr[i] * xr[i] * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    const EPS: f32 = 1e-5;

    #[test]
    fn unit_gain_normalises_rms_to_one() {
        let rows = 3;
        let h = 16;
        let x = Tensor::randn([rows * h], 2.0, 11).into_vec();
        let gain = vec![1.0; h];
        let mut out = vec![0.0; rows * h];
        rmsnorm_forward(&mut out, None, &x, &gain, rows, h, EPS);
        for row in out.chunks(h) {
            let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / h as f32;
            assert!((ms - 1.0).abs() < 1e-3, "row rms² {ms}");
        }
    }

    #[test]
    fn gain_scales_output() {
        let h = 4;
        let x = vec![1.0f32, 1.0, 1.0, 1.0];
        let gain = vec![2.0f32, 0.5, -1.0, 0.0];
        let mut out = vec![0.0; h];
        rmsnorm_forward(&mut out, None, &x, &gain, 1, h, 0.0);
        assert!((out[0] - 2.0).abs() < 1e-6);
        assert!((out[1] - 0.5).abs() < 1e-6);
        assert!((out[2] + 1.0).abs() < 1e-6);
        assert_eq!(out[3], 0.0);
    }

    #[test]
    fn backward_matches_numeric() {
        let rows = 2;
        let h = 8;
        let x = Tensor::randn([rows * h], 1.0, 21).into_vec();
        let gain = Tensor::rand_uniform([h], 0.5, 1.5, 22).into_vec();
        let dy = Tensor::randn([rows * h], 1.0, 23).into_vec();

        let loss = |x: &[f32], gain: &[f32]| -> f32 {
            let mut out = vec![0.0; rows * h];
            rmsnorm_forward(&mut out, None, x, gain, rows, h, EPS);
            out.iter().zip(&dy).map(|(a, b)| a * b).sum()
        };

        let mut inv_rms = vec![0.0; rows];
        let mut out = vec![0.0; rows * h];
        rmsnorm_forward(&mut out, Some(&mut inv_rms), &x, &gain, rows, h, EPS);
        let mut dx = vec![0.0; rows * h];
        let mut dgain = vec![0.0; h];
        rmsnorm_backward(&mut dx, &mut dgain, &dy, &x, &gain, &inv_rms, rows, h);

        let hstep = 1e-3;
        for i in 0..rows * h {
            let mut xp = x.clone();
            xp[i] += hstep;
            let mut xm = x.clone();
            xm[i] -= hstep;
            let num = (loss(&xp, &gain) - loss(&xm, &gain)) / (2.0 * hstep);
            assert!((dx[i] - num).abs() < 2e-2, "dx[{i}] {} vs {num}", dx[i]);
        }
        for i in 0..h {
            let mut gp = gain.clone();
            gp[i] += hstep;
            let mut gm = gain.clone();
            gm[i] -= hstep;
            let num = (loss(&x, &gp) - loss(&x, &gm)) / (2.0 * hstep);
            assert!(
                (dgain[i] - num).abs() < 2e-2,
                "dgain[{i}] {} vs {num}",
                dgain[i]
            );
        }
    }

    #[test]
    fn backward_accumulates() {
        let h = 4;
        let x = vec![1.0f32, 2.0, -1.0, 0.5];
        let gain = vec![1.0f32; h];
        let dy = vec![1.0f32; h];
        let mut inv_rms = vec![0.0];
        let mut out = vec![0.0; h];
        rmsnorm_forward(&mut out, Some(&mut inv_rms), &x, &gain, 1, h, EPS);
        let mut dx1 = vec![0.0; h];
        let mut dg1 = vec![0.0; h];
        rmsnorm_backward(&mut dx1, &mut dg1, &dy, &x, &gain, &inv_rms, 1, h);
        let mut dx2 = dx1.clone();
        let mut dg2 = dg1.clone();
        rmsnorm_backward(&mut dx2, &mut dg2, &dy, &x, &gain, &inv_rms, 1, h);
        for i in 0..h {
            assert!((dx2[i] - 2.0 * dx1[i]).abs() < 1e-6);
            assert!((dg2[i] - 2.0 * dg1[i]).abs() < 1e-6);
        }
    }
}
