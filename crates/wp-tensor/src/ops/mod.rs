//! Compute kernels. All kernels operate on plain `&[f32]` slices with
//! explicit dimensions, so higher layers can point them at sub-buffers of
//! flat parameter/activation arenas without copies.

pub mod elementwise;
pub mod embedding;
pub mod loss;
pub mod matmul;
pub mod norm;
pub mod par;
pub mod rope;
pub mod softmax;

pub use elementwise::{
    add, mul, silu, silu_backward, silu_forward, silu_grad, swiglu_backward, swiglu_forward,
};
pub use embedding::{embedding_backward, embedding_forward};
pub use loss::{cross_entropy_forward_backward, cross_entropy_loss};
pub use matmul::{dot, matmul_naive, matmul_nn, matmul_nt, matmul_tn};
pub use norm::{rmsnorm_backward, rmsnorm_forward};
pub use rope::RopeTable;
pub use softmax::{softmax_row, softmax_rows, softmax_rows_backward};
