//! Cache-blocked matrix multiplication kernels.
//!
//! Three layouts cover the whole training stack: for a linear layer
//! `Y = X·Wᵀ` the forward pass is [`matmul_nt`], the data-gradient pass
//! `dX = dY·W` is [`matmul_nn`], and the weight-gradient pass `dW = dYᵀ·X`
//! is [`matmul_tn`]. Keeping the three as separate kernels avoids
//! materialising any transposed copies.
//!
//! All kernels *accumulate* into `c` (`C += A·B`), which is what backward
//! passes want (gradient accumulation across microbatches) and makes the
//! zero-initialised forward case a trivial caller-side `fill(0.0)`.
//!
//! Parallelism: rows of `C` are independent, so the kernels split `C` (and
//! the matching rows of `A`) across the rayon pool with `par_chunks_mut`.
//! Results are bit-identical to the sequential loop because each output row
//! is produced by exactly one task in the same arithmetic order.

use rayon::prelude::*;

/// Rows-per-task granularity for rayon. Chosen so a task is a few hundred
/// microseconds of work on typical sizes; small matrices stay sequential.
const PAR_MIN_FLOPS: usize = 1 << 20;

/// Inner blocking over `k` keeps a panel of `b` in cache.
const KC: usize = 256;

/// Accumulator lanes of [`dot`]. Eight f32 lanes fill one AVX2 register and
/// give the compiler a reduction it can keep entirely in SIMD.
const DOT_LANES: usize = 8;

/// Dot product of two equal-length rows with a **fixed** 8-lane
/// accumulation order.
///
/// A plain `acc += x * y` loop cannot be vectorised by the compiler (float
/// addition is not reassociative), which leaves every dot-product-shaped
/// kernel — `matmul_nt` rows, attention scores — scalar-bound. Splitting the
/// accumulation into eight independent lanes that are reduced in a fixed
/// tree at the end is still a deterministic order (the same on every run
/// and every thread count), just one the compiler can map onto SIMD lanes.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; DOT_LANES];
    let a8 = a.chunks_exact(DOT_LANES);
    let b8 = b.chunks_exact(DOT_LANES);
    let (ra, rb) = (a8.remainder(), b8.remainder());
    for (ca, cb) in a8.zip(b8) {
        for l in 0..DOT_LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ra.iter().zip(rb) {
        tail += x * y;
    }
    let lo = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let hi = (acc[4] + acc[5]) + (acc[6] + acc[7]);
    (lo + hi) + tail
}

/// `C[m,n] += A[m,k] · B[k,n]` (both operands row-major, untransposed).
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_nn(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length");
    assert_eq!(b.len(), k * n, "B length");
    assert_eq!(c.len(), m * n, "C length");
    let run_row = |row_c: &mut [f32], row_a: &[f32]| {
        // ikj order: stream over B rows, accumulate into the C row. The
        // inner loop is a saxpy the compiler vectorises.
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            for kk in k0..k1 {
                let aik = row_a[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..kk * n + n];
                for (cj, bj) in row_c.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        }
    };
    if 2 * m * n * k >= PAR_MIN_FLOPS && m > 1 {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(row_c, row_a)| run_row(row_c, row_a));
    } else {
        for (row_c, row_a) in c.chunks_mut(n).zip(a.chunks(k)) {
            run_row(row_c, row_a);
        }
    }
}

/// `C[m,n] += A[m,k] · B[n,k]ᵀ` — `B` is stored row-major as `[n, k]`.
///
/// This is the forward shape for `Y = X·Wᵀ` with PyTorch-style `W: [out, in]`.
pub fn matmul_nt(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length");
    assert_eq!(b.len(), n * k, "B length");
    assert_eq!(c.len(), m * n, "C length");
    let run_row = |row_c: &mut [f32], row_a: &[f32]| {
        for (j, cj) in row_c.iter_mut().enumerate() {
            let brow = &b[j * k..j * k + k];
            *cj += dot(row_a, brow);
        }
    };
    if 2 * m * n * k >= PAR_MIN_FLOPS && m > 1 {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(row_c, row_a)| run_row(row_c, row_a));
    } else {
        for (row_c, row_a) in c.chunks_mut(n).zip(a.chunks(k)) {
            run_row(row_c, row_a);
        }
    }
}

/// `C[m,n] += A[k,m]ᵀ · B[k,n]` — `A` is stored row-major as `[k, m]`.
///
/// This is the weight-gradient shape `dW = dYᵀ·X` (with `dY: [k, m]`,
/// `X: [k, n]`): exactly the *W pass* of zero-bubble schedules.
pub fn matmul_tn(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A length");
    assert_eq!(b.len(), k * n, "B length");
    assert_eq!(c.len(), m * n, "C length");
    let run_rows = |c_chunk: &mut [f32], i0: usize| {
        let rows = c_chunk.len() / n;
        for kk in 0..k {
            let arow = &a[kk * m..kk * m + m];
            let brow = &b[kk * n..kk * n + n];
            for r in 0..rows {
                let aik = arow[i0 + r];
                if aik == 0.0 {
                    continue;
                }
                let crow = &mut c_chunk[r * n..r * n + n];
                for (cj, bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        }
    };
    if 2 * m * n * k >= PAR_MIN_FLOPS && m > 1 {
        // Split output rows into contiguous bands; each band re-streams A and
        // B but owns its C rows exclusively. Ceiling division keeps the
        // split to at most `threads` near-even bands (floor division could
        // produce up to 2T bands with a one-row straggler tail).
        let band = m.div_ceil(rayon::current_num_threads().max(1));
        c.par_chunks_mut(band * n)
            .enumerate()
            .for_each(|(bi, c_chunk)| run_rows(c_chunk, bi * band));
    } else {
        run_rows(c, 0);
    }
}

/// Reference (naive triple-loop) multiply, used by tests and benches as the
/// ground truth: `C[m,n] += A[m,k]·B[k,n]`.
pub fn matmul_naive(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn naive_ref(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        matmul_naive(&mut c, a, b, m, k, n);
        c
    }

    fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut t = vec![0.0; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                t[j * rows + i] = x[i * cols + j];
            }
        }
        t
    }

    #[test]
    fn nn_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (16, 32, 8), (33, 17, 65)] {
            let a = Tensor::randn([m * k], 1.0, 1).into_vec();
            let b = Tensor::randn([k * n], 1.0, 2).into_vec();
            let mut c = vec![0.0; m * n];
            matmul_nn(&mut c, &a, &b, m, k, n);
            let r = naive_ref(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&r) {
                assert!((x - y).abs() < 1e-4, "nn mismatch at ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn nt_matches_naive_with_transpose() {
        for &(m, k, n) in &[(2, 3, 4), (16, 64, 16), (5, 31, 9)] {
            let a = Tensor::randn([m * k], 1.0, 3).into_vec();
            let bt = Tensor::randn([n * k], 1.0, 4).into_vec(); // B as [n,k]
            let b = transpose(&bt, n, k); // [k,n]
            let mut c = vec![0.0; m * n];
            matmul_nt(&mut c, &a, &bt, m, k, n);
            let r = naive_ref(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&r) {
                assert!((x - y).abs() < 1e-4, "nt mismatch at ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn tn_matches_naive_with_transpose() {
        for &(m, k, n) in &[(2, 3, 4), (16, 64, 16), (7, 29, 13)] {
            let at = Tensor::randn([k * m], 1.0, 5).into_vec(); // A as [k,m]
            let b = Tensor::randn([k * n], 1.0, 6).into_vec();
            let a = transpose(&at, k, m); // [m,k]
            let mut c = vec![0.0; m * n];
            matmul_tn(&mut c, &at, &b, m, k, n);
            let r = naive_ref(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&r) {
                assert!((x - y).abs() < 1e-4, "tn mismatch at ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn accumulates_rather_than_overwrites() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![100.0; 4];
        matmul_nn(&mut c, &a, &b, 2, 2, 2);
        assert_eq!(c, vec![105.0, 106.0, 107.0, 108.0]);
    }

    #[test]
    fn dot_matches_scalar_reference() {
        for &n in &[0usize, 1, 7, 8, 9, 64, 250, 1024] {
            let a = Tensor::randn([n.max(1)], 1.0, 40).into_vec();
            let b = Tensor::randn([n.max(1)], 1.0, 41).into_vec();
            let (a, b) = (&a[..n], &b[..n]);
            let want: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let got = dot(a, b);
            assert!(
                (got - want).abs() < 1e-3 * (1.0 + want.abs()),
                "n={n}: {got} vs {want}"
            );
            // Deterministic: same inputs, same bits, every time.
            assert_eq!(got.to_bits(), dot(a, b).to_bits());
        }
    }

    #[test]
    fn tn_band_split_handles_indivisible_rows() {
        // Regression for the floor-divided band size: `m` chosen so it does
        // not divide by any plausible thread count, and large enough to take
        // the parallel path. All rows must be produced exactly once and the
        // parallel split must match the sequential run bit for bit.
        let (m, k, n) = (131, 70, 64);
        assert!(2 * m * n * k >= super::PAR_MIN_FLOPS);
        let at = Tensor::randn([k * m], 1.0, 42).into_vec();
        let b = Tensor::randn([k * n], 1.0, 43).into_vec();
        let mut c_par = vec![0.0; m * n];
        matmul_tn(&mut c_par, &at, &b, m, k, n);
        let mut c_seq = vec![0.0; m * n];
        rayon::force_sequential(|| matmul_tn(&mut c_seq, &at, &b, m, k, n));
        assert_eq!(c_par, c_seq);
        let a = transpose(&at, k, m);
        let r = naive_ref(&a, &b, m, k, n);
        for (x, y) in c_par.iter().zip(&r) {
            assert!((x - y).abs() < 1e-3, "tn band mismatch");
        }
    }

    #[test]
    fn parallel_path_bit_identical_to_sequential() {
        // Force the parallel path with a size above PAR_MIN_FLOPS and check
        // it is bit-identical to a size-agnostic sequential naive pass done
        // in the same per-row order (ikj ordering differs from naive ijk, so
        // compare against a sequential run of the same kernel instead).
        let (m, k, n) = (128, 128, 64);
        let a = Tensor::randn([m * k], 1.0, 7).into_vec();
        let b = Tensor::randn([k * n], 1.0, 8).into_vec();
        let mut c_par = vec![0.0; m * n];
        matmul_nn(&mut c_par, &a, &b, m, k, n);
        // Sequential same-order reference.
        let mut c_seq = vec![0.0; m * n];
        for i in 0..m {
            let row_a = &a[i * k..(i + 1) * k];
            let row_c = &mut c_seq[i * n..(i + 1) * n];
            for k0 in (0..k).step_by(super::KC) {
                let k1 = (k0 + super::KC).min(k);
                for kk in k0..k1 {
                    let aik = row_a[kk];
                    for (cj, bj) in row_c.iter_mut().zip(&b[kk * n..kk * n + n]) {
                        *cj += aik * bj;
                    }
                }
            }
        }
        assert_eq!(c_par, c_seq, "rayon path must not change results");
    }
}
