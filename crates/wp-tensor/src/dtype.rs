//! Numeric storage formats used by the training stack.
//!
//! The paper's implementation (§4.3) stores activations, weights and weight
//! gradients in `fp16`, activation gradients in `bf16`, and optimizer states
//! in `fp32`. We have no hardware half-precision on the CPU, so compute is
//! always carried out in `f32` and the 16-bit formats exist as *storage*
//! formats: values are quantized on store and dequantized on load. The
//! encode/decode routines below implement IEEE 754 binary16 and bfloat16
//! with round-to-nearest-even, which matches what a GPU cast does.

/// Storage precision of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// IEEE 754 binary32.
    F32,
    /// IEEE 754 binary16 (1 sign, 5 exponent, 10 mantissa bits).
    F16,
    /// bfloat16 (1 sign, 8 exponent, 7 mantissa bits).
    BF16,
}

impl DType {
    /// Size of one element in bytes. This is the number the communication
    /// layer charges per element, so it must agree with what a real NCCL
    /// transfer of the same dtype would move.
    #[inline]
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 | DType::BF16 => 2,
        }
    }

    /// Largest finite value representable in this format.
    pub const fn max_finite(self) -> f32 {
        match self {
            DType::F32 => f32::MAX,
            DType::F16 => 65504.0,
            DType::BF16 => 3.3895314e38,
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DType::F32 => write!(f, "fp32"),
            DType::F16 => write!(f, "fp16"),
            DType::BF16 => write!(f, "bf16"),
        }
    }
}

/// Encode an `f32` as IEEE 754 binary16 with round-to-nearest-even.
///
/// Overflow saturates to infinity, exactly like a CUDA `__float2half_rn`
/// followed by the hardware's overflow behaviour.
#[inline]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: preserve NaN-ness by keeping a mantissa bit set.
        let nan = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan;
    }
    // Re-bias from 127 to 15.
    let unbiased = exp - 127;
    if unbiased >= 16 {
        // Overflow -> infinity.
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        // Normal range. Keep the top 10 mantissa bits, round-to-nearest-even
        // on the 13 dropped bits.
        let half_exp = ((unbiased + 15) as u16) << 10;
        let half_mant = (mant >> 13) as u16;
        let round_bits = mant & 0x1fff;
        let mut out = sign | half_exp | half_mant;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (half_mant & 1) == 1) {
            out = out.wrapping_add(1); // carries correctly into the exponent
        }
        return out;
    }
    if unbiased >= -25 {
        // Subnormal half. Add the implicit leading 1, then shift.
        let mant = mant | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let half_mant = (mant >> shift) as u16;
        let round_mask = (1u32 << shift) - 1;
        let round_bits = mant & round_mask;
        let halfway = 1u32 << (shift - 1);
        let mut out = sign | half_mant;
        if round_bits > halfway || (round_bits == halfway && (half_mant & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    // Underflows to signed zero.
    sign
}

/// Decode an IEEE 754 binary16 bit pattern into `f32`.
#[inline]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;

    let bits = if exp == 0x1f {
        // Inf / NaN.
        sign | 0x7f80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal half: value is mant × 2⁻²⁴, exactly representable
            // in f32, so build it with float arithmetic.
            let mag = mant as f32 * 2f32.powi(-24);
            return if sign != 0 { -mag } else { mag };
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Encode an `f32` as bfloat16 with round-to-nearest-even.
#[inline]
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Quiet NaN, preserving sign.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round_bit = 0x0000_8000u32;
    let lower = bits & 0xffff;
    let mut upper = (bits >> 16) as u16;
    if lower > round_bit || (lower == round_bit && (upper & 1) == 1) {
        upper = upper.wrapping_add(1);
    }
    upper
}

/// Decode a bfloat16 bit pattern into `f32`.
#[inline]
pub fn bf16_bits_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// Round-trip a value through the given storage format.
///
/// This is the quantization a store-then-load performs; it is how mixed
/// precision is applied throughout the stack.
#[inline]
pub fn quantize(x: f32, dtype: DType) -> f32 {
    match dtype {
        DType::F32 => x,
        DType::F16 => f16_bits_to_f32(f32_to_f16_bits(x)),
        DType::BF16 => bf16_bits_to_f32(f32_to_bf16_bits(x)),
    }
}

/// In-place round-trip of a whole slice through the storage format.
pub fn quantize_slice(xs: &mut [f32], dtype: DType) {
    match dtype {
        DType::F32 => {}
        DType::F16 => {
            for x in xs {
                *x = f16_bits_to_f32(f32_to_f16_bits(*x));
            }
        }
        DType::BF16 => {
            for x in xs {
                *x = bf16_bits_to_f32(f32_to_bf16_bits(*x));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_exact_small_integers() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(
                quantize(x, DType::F16),
                x,
                "f16 must be exact for |x| <= 2048"
            );
        }
    }

    #[test]
    fn f16_known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(
            f32_to_f16_bits(65536.0),
            0x7c00,
            "overflow saturates to inf"
        );
        assert_eq!(f32_to_f16_bits(5.9604645e-8), 0x0001, "smallest subnormal");
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half;
        // round-to-even keeps 1.0.
        let halfway = 1.0 + 2f32.powi(-11);
        assert_eq!(quantize(halfway, DType::F16), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2f32.powi(-11) + 2f32.powi(-20);
        assert_eq!(quantize(above, DType::F16), 1.0 + 2f32.powi(-10));
    }

    #[test]
    fn f16_decode_subnormals() {
        assert_eq!(f16_bits_to_f32(0x0001), 2f32.powi(-24));
        assert_eq!(f16_bits_to_f32(0x03ff), 2f32.powi(-24) * 1023.0);
        assert_eq!(f16_bits_to_f32(0x0400), 2f32.powi(-14));
    }

    #[test]
    fn bf16_known_patterns() {
        assert_eq!(f32_to_bf16_bits(1.0), 0x3f80);
        assert_eq!(f32_to_bf16_bits(-1.0), 0xbf80);
        assert_eq!(bf16_bits_to_f32(0x3f80), 1.0);
        // bf16 has f32's exponent range so 1e38 survives.
        let big = quantize(1e38, DType::BF16);
        assert!(big.is_finite() && (big - 1e38).abs() / 1e38 < 0.01);
    }

    #[test]
    fn bf16_nan_preserved() {
        assert!(bf16_bits_to_f32(f32_to_bf16_bits(f32::NAN)).is_nan());
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn quantize_is_idempotent() {
        let mut vals = vec![0.1f32, -3.7, 1e-5, 123.456, -65000.0, 1e-9];
        for &dt in &[DType::F16, DType::BF16] {
            for &v in &vals {
                let once = quantize(v, dt);
                let twice = quantize(once, dt);
                assert_eq!(
                    once.to_bits(),
                    twice.to_bits(),
                    "{dt} quantize not idempotent for {v}"
                );
            }
        }
        quantize_slice(&mut vals, DType::F16);
        let snapshot = vals.clone();
        quantize_slice(&mut vals, DType::F16);
        assert_eq!(vals, snapshot);
    }

    #[test]
    fn relative_error_bounds() {
        // f16 has 11 significand bits -> rel err <= 2^-11; bf16 has 8 -> 2^-8.
        let xs: Vec<f32> = (1..1000).map(|i| i as f32 * 0.37 + 0.011).collect();
        for &x in &xs {
            let e16 = (quantize(x, DType::F16) - x).abs() / x;
            let eb16 = (quantize(x, DType::BF16) - x).abs() / x;
            assert!(e16 <= 2f32.powi(-11), "f16 err {e16} at {x}");
            assert!(eb16 <= 2f32.powi(-8), "bf16 err {eb16} at {x}");
        }
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::BF16.size_bytes(), 2);
    }
}
