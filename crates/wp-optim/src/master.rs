//! fp32 master weights for mixed-precision training.
//!
//! The model's working copy of a parameter buffer may live quantized to fp16
//! (what the GPU kernels read); the optimizer must not accumulate updates in
//! fp16 or small updates vanish. [`MasterWeights`] keeps the fp32 truth,
//! applies optimizer steps to it, and republishes the quantized working copy
//! — the scheme of the paper's §4.3 (fp16 weights, fp32 optimizer states).

use crate::Optimizer;
use wp_tensor::dtype::quantize_slice;
use wp_tensor::DType;
use wp_trace::{RankTracer, SpanKind, NO_ID};

/// fp32 master copy of a (possibly lower-precision) working buffer.
#[derive(Debug, Clone)]
pub struct MasterWeights {
    master: Vec<f32>,
    /// Storage format of the working copy.
    working_dtype: DType,
}

impl MasterWeights {
    /// Capture the master copy from the current working values.
    pub fn capture(working: &[f32], working_dtype: DType) -> Self {
        MasterWeights { master: working.to_vec(), working_dtype }
    }

    /// The fp32 master values.
    pub fn master(&self) -> &[f32] {
        &self.master
    }

    /// Apply one optimizer step to the master weights, then write the
    /// re-quantized result into `working`.
    pub fn step<O: Optimizer + ?Sized>(
        &mut self,
        opt: &mut O,
        working: &mut [f32],
        grads: &[f32],
        lr: f32,
    ) {
        assert_eq!(working.len(), self.master.len(), "buffer length changed");
        opt.step_with_lr(&mut self.master, grads, lr);
        working.copy_from_slice(&self.master);
        quantize_slice(working, self.working_dtype);
    }

    /// Like [`step`](Self::step), but records the optimizer step proper as
    /// an [`SpanKind::OptimStep`] span when a tracer is attached. The caller
    /// (the runtime's update op) supplies identity context via its own
    /// enclosing `Update` span; this one measures just the math.
    pub fn step_traced<O: Optimizer + ?Sized>(
        &mut self,
        opt: &mut O,
        working: &mut [f32],
        grads: &[f32],
        lr: f32,
        tracer: Option<&RankTracer>,
    ) {
        let t0 = tracer.map(|t| t.now_ns());
        self.step(opt, working, grads, lr);
        if let (Some(tr), Some(start)) = (tracer, t0) {
            tr.end_span(SpanKind::OptimStep, start, NO_ID, NO_ID, 0, 0);
        }
    }

    /// Memory the master copy occupies, in f32 elements.
    pub fn state_elems(&self) -> usize {
        self.master.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::{Sgd, SgdConfig};

    #[test]
    fn small_updates_survive_through_master() {
        // A tiny update that fp16 cannot represent relative to 1.0:
        // 1.0 + 1e-4 rounds back to 1.0 in fp16, so naive fp16 training
        // stalls; the master copy accumulates it.
        let mut working = vec![1.0f32];
        quantize_slice(&mut working, DType::F16);
        let mut mw = MasterWeights::capture(&working, DType::F16);
        let mut opt = Sgd::new(1, SgdConfig { lr: 1.0, ..Default::default() });
        for _ in 0..10 {
            mw.step(&mut opt, &mut working, &[-1e-4], 1.0);
        }
        assert!((mw.master()[0] - 1.001).abs() < 1e-6, "master accumulated");
        // After 10 steps the accumulated 0.1% change is visible in fp16 too.
        assert!(working[0] > 1.0, "working copy eventually moves");
    }

    #[test]
    fn working_copy_is_quantized() {
        let mut working = vec![0.0f32];
        let mut mw = MasterWeights::capture(&working, DType::F16);
        let mut opt = Sgd::new(1, SgdConfig { lr: 1.0, ..Default::default() });
        mw.step(&mut opt, &mut working, &[-(1.0 + 2f32.powi(-13))], 1.0);
        // Master holds the exact value; working is the fp16 rounding.
        assert_eq!(mw.master()[0], 1.0 + 2f32.powi(-13));
        assert_eq!(working[0], 1.0);
    }

    #[test]
    fn step_traced_matches_step_and_records() {
        let mut opt_a = Sgd::new(1, SgdConfig { lr: 1.0, ..Default::default() });
        let mut opt_b = Sgd::new(1, SgdConfig { lr: 1.0, ..Default::default() });
        let mut wa = vec![1.0f32];
        let mut wb = vec![1.0f32];
        let mut ma = MasterWeights::capture(&wa, DType::F32);
        let mut mb = MasterWeights::capture(&wb, DType::F32);
        let collector = wp_trace::TraceCollector::new(1, 8);
        let tracer = collector.tracer(0);
        ma.step(&mut opt_a, &mut wa, &[0.25], 1.0);
        mb.step_traced(&mut opt_b, &mut wb, &[0.25], 1.0, Some(&tracer));
        assert_eq!(wa, wb, "tracing must not perturb the update");
        let trace = collector.snapshot();
        assert!(trace.tracks[0].has_kind(SpanKind::OptimStep));
        // And with no tracer it records nothing and still steps.
        mb.step_traced(&mut opt_b, &mut wb, &[0.25], 1.0, None);
        assert_eq!(collector.snapshot().span_count(), 1);
    }

    #[test]
    fn f32_working_dtype_is_lossless() {
        let mut working = vec![0.5f32, -0.25];
        let mut mw = MasterWeights::capture(&working, DType::F32);
        let mut opt = Sgd::new(2, SgdConfig { lr: 0.1, ..Default::default() });
        mw.step(&mut opt, &mut working, &[1.0, 2.0], 0.1);
        assert_eq!(working, mw.master());
    }
}
