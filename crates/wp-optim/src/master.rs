//! fp32 master weights for mixed-precision training.
//!
//! The model's working copy of a parameter buffer may live quantized to fp16
//! (what the GPU kernels read); the optimizer must not accumulate updates in
//! fp16 or small updates vanish. [`MasterWeights`] keeps the fp32 truth,
//! applies optimizer steps to it, and republishes the quantized working copy
//! — the scheme of the paper's §4.3 (fp16 weights, fp32 optimizer states).

use crate::scaler::GradScaler;
use crate::Optimizer;
use wp_metrics::{Counter, Gauge, Hist, RankMetrics};
use wp_tensor::dtype::quantize_slice;
use wp_tensor::DType;
use wp_trace::{RankTracer, SpanKind, NO_ID};

/// fp32 master copy of a (possibly lower-precision) working buffer.
#[derive(Debug, Clone)]
pub struct MasterWeights {
    master: Vec<f32>,
    /// Storage format of the working copy.
    working_dtype: DType,
}

impl MasterWeights {
    /// Capture the master copy from the current working values.
    pub fn capture(working: &[f32], working_dtype: DType) -> Self {
        MasterWeights {
            master: working.to_vec(),
            working_dtype,
        }
    }

    /// Rebuild from a previously-captured fp32 master buffer — the
    /// checkpoint-restore counterpart of [`capture`](Self::capture), which
    /// would otherwise re-quantize an already-quantized working copy and
    /// lose the fp32 truth.
    pub fn from_master(master: Vec<f32>, working_dtype: DType) -> Self {
        MasterWeights {
            master,
            working_dtype,
        }
    }

    /// The fp32 master values.
    pub fn master(&self) -> &[f32] {
        &self.master
    }

    /// Apply one optimizer step to the master weights, then write the
    /// re-quantized result into `working`.
    pub fn step<O: Optimizer + ?Sized>(
        &mut self,
        opt: &mut O,
        working: &mut [f32],
        grads: &[f32],
        lr: f32,
    ) {
        assert_eq!(working.len(), self.master.len(), "buffer length changed");
        opt.step_with_lr(&mut self.master, grads, lr);
        working.copy_from_slice(&self.master);
        quantize_slice(working, self.working_dtype);
    }

    /// Like [`step`](Self::step), but records the optimizer step proper as
    /// an [`SpanKind::OptimStep`] span when a tracer is attached. The caller
    /// (the runtime's update op) supplies identity context via its own
    /// enclosing `Update` span; this one measures just the math.
    pub fn step_traced<O: Optimizer + ?Sized>(
        &mut self,
        opt: &mut O,
        working: &mut [f32],
        grads: &[f32],
        lr: f32,
        tracer: Option<&RankTracer>,
    ) {
        self.step_observed(opt, working, grads, lr, tracer, None);
    }

    /// Like [`step_traced`](Self::step_traced), but additionally feeds an
    /// attached metrics handle: the step duration lands in
    /// [`Hist::OptimStepNs`] and the applied learning rate in
    /// [`Gauge::CurrentLr`]. Both sinks are strictly observational — the
    /// numeric update is [`step`](Self::step) either way.
    pub fn step_observed<O: Optimizer + ?Sized>(
        &mut self,
        opt: &mut O,
        working: &mut [f32],
        grads: &[f32],
        lr: f32,
        tracer: Option<&RankTracer>,
        metrics: Option<&RankMetrics>,
    ) {
        let t0 = tracer.map(|t| t.now_ns());
        let m0 = metrics.map(|m| m.now_ns());
        self.step(opt, working, grads, lr);
        if let (Some(tr), Some(start)) = (tracer, t0) {
            tr.end_span(SpanKind::OptimStep, start, NO_ID, NO_ID, 0, 0);
        }
        if let (Some(m), Some(start)) = (metrics, m0) {
            m.observe_since(Hist::OptimStepNs, start);
            m.set(Gauge::CurrentLr, lr as f64);
        }
    }

    /// One mixed-precision step under dynamic loss scaling.
    ///
    /// Unscales `grads` in place, then either applies one optimizer step
    /// (finite gradients) or skips it entirely (overflow). On a skip
    /// *nothing* advances: not the optimizer's internal step count `t` (so
    /// Adam bias correction stays aligned with applied updates), not the
    /// master or working weights. Callers driving an LR schedule must key it
    /// off applied steps (e.g. [`AdamW::steps`](crate::AdamW::steps)), not
    /// attempted iterations, so a skip does not consume a schedule step
    /// either. Returns `true` if the step was applied.
    pub fn step_scaled<O: Optimizer + ?Sized>(
        &mut self,
        opt: &mut O,
        working: &mut [f32],
        grads: &mut [f32],
        lr: f32,
        scaler: &mut GradScaler,
    ) -> bool {
        let finite = scaler.unscale(grads);
        let apply = scaler.update(!finite);
        if apply {
            self.step(opt, working, grads, lr);
        }
        apply
    }

    /// Like [`step_scaled`](Self::step_scaled), but counts overflow-skipped
    /// steps into [`Counter::OverflowSkipped`] and records the applied
    /// step's duration/LR like [`step_observed`](Self::step_observed). The
    /// numeric trajectory — including skip decisions and scale dynamics —
    /// is bit-identical to the unobserved variant.
    pub fn step_scaled_observed<O: Optimizer + ?Sized>(
        &mut self,
        opt: &mut O,
        working: &mut [f32],
        grads: &mut [f32],
        lr: f32,
        scaler: &mut GradScaler,
        metrics: Option<&RankMetrics>,
    ) -> bool {
        let finite = scaler.unscale(grads);
        let apply = scaler.update(!finite);
        if apply {
            let m0 = metrics.map(|m| m.now_ns());
            self.step(opt, working, grads, lr);
            if let (Some(m), Some(start)) = (metrics, m0) {
                m.observe_since(Hist::OptimStepNs, start);
                m.set(Gauge::CurrentLr, lr as f64);
            }
        } else if let Some(m) = metrics {
            m.incr(Counter::OverflowSkipped);
        }
        apply
    }

    /// Memory the master copy occupies, in f32 elements.
    pub fn state_elems(&self) -> usize {
        self.master.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::{AdamConfig, AdamW};
    use crate::sgd::{Sgd, SgdConfig};

    #[test]
    fn small_updates_survive_through_master() {
        // A tiny update that fp16 cannot represent relative to 1.0:
        // 1.0 + 1e-4 rounds back to 1.0 in fp16, so naive fp16 training
        // stalls; the master copy accumulates it.
        let mut working = vec![1.0f32];
        quantize_slice(&mut working, DType::F16);
        let mut mw = MasterWeights::capture(&working, DType::F16);
        let mut opt = Sgd::new(
            1,
            SgdConfig {
                lr: 1.0,
                ..Default::default()
            },
        );
        for _ in 0..10 {
            mw.step(&mut opt, &mut working, &[-1e-4], 1.0);
        }
        assert!((mw.master()[0] - 1.001).abs() < 1e-6, "master accumulated");
        // After 10 steps the accumulated 0.1% change is visible in fp16 too.
        assert!(working[0] > 1.0, "working copy eventually moves");
    }

    #[test]
    fn working_copy_is_quantized() {
        let mut working = vec![0.0f32];
        let mut mw = MasterWeights::capture(&working, DType::F16);
        let mut opt = Sgd::new(
            1,
            SgdConfig {
                lr: 1.0,
                ..Default::default()
            },
        );
        mw.step(&mut opt, &mut working, &[-(1.0 + 2f32.powi(-13))], 1.0);
        // Master holds the exact value; working is the fp16 rounding.
        assert_eq!(mw.master()[0], 1.0 + 2f32.powi(-13));
        assert_eq!(working[0], 1.0);
    }

    #[test]
    fn step_traced_matches_step_and_records() {
        let mut opt_a = Sgd::new(
            1,
            SgdConfig {
                lr: 1.0,
                ..Default::default()
            },
        );
        let mut opt_b = Sgd::new(
            1,
            SgdConfig {
                lr: 1.0,
                ..Default::default()
            },
        );
        let mut wa = vec![1.0f32];
        let mut wb = vec![1.0f32];
        let mut ma = MasterWeights::capture(&wa, DType::F32);
        let mut mb = MasterWeights::capture(&wb, DType::F32);
        let collector = wp_trace::TraceCollector::new(1, 8);
        let tracer = collector.tracer(0);
        ma.step(&mut opt_a, &mut wa, &[0.25], 1.0);
        mb.step_traced(&mut opt_b, &mut wb, &[0.25], 1.0, Some(&tracer));
        assert_eq!(wa, wb, "tracing must not perturb the update");
        let trace = collector.snapshot();
        assert!(trace.tracks[0].has_kind(SpanKind::OptimStep));
        // And with no tracer it records nothing and still steps.
        mb.step_traced(&mut opt_b, &mut wb, &[0.25], 1.0, None);
        assert_eq!(collector.snapshot().span_count(), 1);
    }

    #[test]
    fn skipped_step_leaves_all_state_bit_identical() {
        // Regression: AdamW::step_with_lr advances `t` unconditionally, so a
        // naive "unscale, then step anyway" overflow path used to desync the
        // bias correction from the number of applied updates. step_scaled
        // must not touch the optimizer at all on overflow.
        let mut working = vec![1.0f32, -0.5];
        let mut mw = MasterWeights::capture(&working, DType::F32);
        let mut opt = AdamW::new(2, AdamConfig::default());
        let mut scaler = GradScaler::with_scale(8.0);

        // One clean step so the optimizer has non-trivial state.
        let mut g = vec![0.8f32, -1.6];
        assert!(mw.step_scaled(&mut opt, &mut working, &mut g, 1e-3, &mut scaler));
        assert_eq!(opt.steps(), 1);

        let opt_before = opt.clone();
        let master_before = mw.master().to_vec();
        let working_before = working.clone();

        // Overflowed gradients: the step must be skipped wholesale.
        let mut bad = vec![f32::INFINITY, 1.0];
        assert!(!mw.step_scaled(&mut opt, &mut working, &mut bad, 1e-3, &mut scaler));
        assert_eq!(
            opt, opt_before,
            "optimizer state (m, v, t) must not move on a skip"
        );
        assert_eq!(
            opt.steps(),
            1,
            "bias-correction step count must not advance"
        );
        assert_eq!(mw.master(), &master_before[..]);
        assert_eq!(working, working_before);
        assert_eq!(scaler.skipped_steps(), 1);
        assert_eq!(scaler.scale(), 4.0, "overflow backs the scale off");
    }

    #[test]
    fn skip_then_clean_step_matches_never_skipped_trajectory() {
        // A skipped iteration must be invisible to the trajectory: optimizer
        // state after [clean, skip, clean] equals state after [clean, clean].
        let run = |with_skip: bool| {
            let mut working = vec![0.3f32, 0.9];
            let mut mw = MasterWeights::capture(&working, DType::F32);
            let mut opt = AdamW::new(2, AdamConfig::default());
            let mut scaler = GradScaler::with_scale(4.0);
            let mut g1 = vec![0.4f32, -0.8];
            mw.step_scaled(&mut opt, &mut working, &mut g1, 1e-3, &mut scaler);
            if with_skip {
                let mut bad = vec![f32::NAN, 0.0];
                mw.step_scaled(&mut opt, &mut working, &mut bad, 1e-3, &mut scaler);
            }
            // Same post-step scale so the unscaled gradients match: feed
            // pre-scaled values through a fresh scaler of the current scale.
            let mut g2 = vec![scaler.scale() * 0.2, scaler.scale() * -0.1];
            mw.step_scaled(&mut opt, &mut working, &mut g2, 1e-3, &mut scaler);
            (opt, working)
        };
        let (opt_a, w_a) = run(false);
        let (opt_b, w_b) = run(true);
        assert_eq!(opt_a, opt_b);
        assert_eq!(w_a, w_b);
    }

    #[test]
    fn step_observed_records_duration_and_lr() {
        let registry = wp_metrics::MetricsRegistry::new(1);
        let m = registry.handle(0);
        let mut working = vec![1.0f32];
        let mut mw = MasterWeights::capture(&working, DType::F32);
        let mut opt = Sgd::new(
            1,
            SgdConfig {
                lr: 1.0,
                ..Default::default()
            },
        );
        mw.step_observed(&mut opt, &mut working, &[0.25], 0.5, None, Some(&m));
        assert_eq!(working[0], 1.0 - 0.5 * 0.25);
        let snap = registry.snapshot();
        assert_eq!(snap.ranks[0].hist(Hist::OptimStepNs).count, 1);
        assert_eq!(snap.ranks[0].gauge(Gauge::CurrentLr), 0.5);
    }

    #[test]
    fn step_scaled_observed_counts_skips_only_on_overflow() {
        let registry = wp_metrics::MetricsRegistry::new(1);
        let m = registry.handle(0);
        let mut working = vec![1.0f32, -0.5];
        let mut mw = MasterWeights::capture(&working, DType::F32);
        let mut opt = AdamW::new(2, AdamConfig::default());
        let mut scaler = GradScaler::with_scale(8.0);

        let mut good = vec![0.8f32, -1.6];
        assert!(mw.step_scaled_observed(
            &mut opt,
            &mut working,
            &mut good,
            1e-3,
            &mut scaler,
            Some(&m)
        ));
        let mut bad = vec![f32::INFINITY, 1.0];
        assert!(!mw.step_scaled_observed(
            &mut opt,
            &mut working,
            &mut bad,
            1e-3,
            &mut scaler,
            Some(&m)
        ));

        let snap = registry.snapshot();
        assert_eq!(snap.ranks[0].counter(Counter::OverflowSkipped), 1);
        assert_eq!(
            snap.ranks[0].hist(Hist::OptimStepNs).count,
            1,
            "only the applied step is timed"
        );
        assert_eq!(
            scaler.skipped_steps(),
            1,
            "observation must not change scaler dynamics"
        );
    }

    #[test]
    fn f32_working_dtype_is_lossless() {
        let mut working = vec![0.5f32, -0.25];
        let mut mw = MasterWeights::capture(&working, DType::F32);
        let mut opt = Sgd::new(
            2,
            SgdConfig {
                lr: 0.1,
                ..Default::default()
            },
        );
        mw.step(&mut opt, &mut working, &[1.0, 2.0], 0.1);
        assert_eq!(working, mw.master());
    }
}
