//! Adam / AdamW with bias correction.
//!
//! State (`m`, `v`) is kept in f32 — the paper stores optimizer state in
//! fp32 distributed across workers (§4.3); in WeiPipe each worker holds the
//! state only for the layers it owns, which is why the state lives beside
//! the layer buffer rather than in a global table.

use crate::Optimizer;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW). 0 gives plain Adam.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam(W) state for one flat parameter buffer.
///
/// `PartialEq` compares the full state (`m`, `v`, `t`, config) bit-for-bit —
/// tests use it to prove a skipped step leaves the optimizer untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamW {
    cfg: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl AdamW {
    /// Optimizer for `n` parameters.
    pub fn new(n: usize, cfg: AdamConfig) -> Self {
        AdamW {
            cfg,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for AdamW {
    fn step_with_lr(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        assert_eq!(params.len(), self.m.len(), "state sized for another buffer");
        self.t += 1;
        let b1 = self.cfg.beta1;
        let b2 = self.cfg.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let eps = self.cfg.eps;
        let wd = self.cfg.weight_decay;
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * params[i]);
        }
    }

    fn lr(&self) -> f32 {
        self.cfg.lr
    }

    fn state_elems(&self) -> usize {
        self.m.len() + self.v.len()
    }

    fn export_state(&self) -> (u64, Vec<Vec<f32>>) {
        (self.t, vec![self.m.clone(), self.v.clone()])
    }

    fn import_state(&mut self, t: u64, bufs: &[Vec<f32>]) -> Result<(), String> {
        if bufs.len() != 2 {
            return Err(format!("AdamW expects 2 state buffers, got {}", bufs.len()));
        }
        if bufs[0].len() != self.m.len() || bufs[1].len() != self.v.len() {
            return Err(format!(
                "AdamW state sized for {} params, got m={} v={}",
                self.m.len(),
                bufs[0].len(),
                bufs[1].len()
            ));
        }
        self.m.copy_from_slice(&bufs[0]);
        self.v.copy_from_slice(&bufs[1]);
        self.t = t;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let mut p = vec![5.0f32, -3.0];
        let mut opt = AdamW::new(
            2,
            AdamConfig {
                lr: 0.1,
                ..Default::default()
            },
        );
        for _ in 0..300 {
            let g: Vec<f32> = p.iter().map(|&x| 2.0 * x).collect();
            opt.step(&mut p, &g);
        }
        assert!(p.iter().all(|x| x.abs() < 1e-2), "{p:?}");
    }

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction, the first Adam step ≈ lr · sign(g).
        let mut p = vec![0.0f32];
        let mut opt = AdamW::new(
            1,
            AdamConfig {
                lr: 0.01,
                ..Default::default()
            },
        );
        opt.step(&mut p, &[123.456]);
        assert!((p[0] + 0.01).abs() < 1e-4, "{}", p[0]);
    }

    #[test]
    fn invariant_to_gradient_scale() {
        // Adam normalises by the gradient magnitude: scaling all grads by a
        // constant leaves the trajectory (nearly) unchanged.
        let run = |scale: f32| -> f32 {
            let mut p = vec![2.0f32];
            let mut opt = AdamW::new(
                1,
                AdamConfig {
                    lr: 0.05,
                    eps: 1e-12,
                    ..Default::default()
                },
            );
            for _ in 0..20 {
                let g = vec![2.0 * p[0] * scale];
                opt.step(&mut p, &g);
            }
            p[0]
        };
        assert!((run(1.0) - run(1000.0)).abs() < 1e-3);
    }

    #[test]
    fn weight_decay_decouples_from_moments() {
        // With zero gradient, AdamW still decays weights; Adam (wd=0) does not.
        let mut p = vec![1.0f32];
        let mut opt = AdamW::new(
            1,
            AdamConfig {
                lr: 0.1,
                weight_decay: 0.1,
                ..Default::default()
            },
        );
        opt.step(&mut p, &[0.0]);
        assert!((p[0] - (1.0 - 0.1 * 0.1)).abs() < 1e-6);
    }

    #[test]
    fn state_elems_counts_both_moments() {
        assert_eq!(AdamW::new(10, AdamConfig::default()).state_elems(), 20);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut p1 = vec![1.0f32, -2.0];
        let mut p2 = p1.clone();
        let mut o1 = AdamW::new(2, AdamConfig::default());
        let mut o2 = AdamW::new(2, AdamConfig::default());
        for s in 0..10 {
            let g = vec![s as f32 * 0.1, -0.3];
            o1.step(&mut p1, &g);
            o2.step(&mut p2, &g);
        }
        assert_eq!(p1, p2);
        assert_eq!(o1.steps(), 10);
    }
}
