//! # wp-optim
//!
//! Optimizers and mixed-precision machinery for the WeiPipe stack:
//! SGD(+momentum) and Adam(W) over flat `&mut [f32]` buffers, fp32
//! [`MasterWeights`] for fp16 working copies, a dynamic [`GradScaler`], and
//! LR [`schedule::LrSchedule`]s.
//!
//! Everything operates on flat slices because the distributed runtimes keep
//! parameters in flat per-layer buffers: in WeiPipe each worker owns the
//! optimizer state *only for the layers it owns* (§4.2.1 — state never
//! travels the ring), so one optimizer instance per owned layer is exactly
//! the right granularity.

#![warn(missing_docs)]

pub mod adam;
pub mod master;
pub mod scaler;
pub mod schedule;
pub mod sgd;

pub use adam::{AdamConfig, AdamW};
pub use master::MasterWeights;
pub use scaler::GradScaler;
pub use schedule::LrSchedule;
pub use sgd::{Sgd, SgdConfig};

/// A first-order optimizer over a flat parameter buffer.
pub trait Optimizer {
    /// Apply one update with an explicit learning rate (scheduling hook).
    fn step_with_lr(&mut self, params: &mut [f32], grads: &[f32], lr: f32);

    /// Apply one update at the optimizer's base learning rate.
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        self.step_with_lr(params, grads, self.lr());
    }

    /// Base learning rate.
    fn lr(&self) -> f32;

    /// Optimizer state size in f32 elements (for the memory ledger).
    fn state_elems(&self) -> usize;

    /// Snapshot the optimizer's mutable state for checkpointing: the step
    /// count and the state buffers, in a fixed per-optimizer order. The
    /// buffer count is deterministic for a given configuration, so every
    /// rank of a replicated world exports the same shape.
    fn export_state(&self) -> (u64, Vec<Vec<f32>>);

    /// Restore state captured by [`export_state`](Self::export_state) into a
    /// freshly-built optimizer of the same configuration.
    ///
    /// # Errors
    /// A description of the mismatch when the buffer count or any buffer
    /// length disagrees with this optimizer's shape.
    fn import_state(&mut self, t: u64, bufs: &[Vec<f32>]) -> Result<(), String>;
}
