//! Dynamic loss scaling for fp16 training.
//!
//! fp16 gradients underflow below ~6·10⁻⁸; multiplying the loss by a large
//! scale before backward and dividing gradients by it before the optimizer
//! step keeps small gradients representable. The scale adapts: halve on
//! overflow (inf/NaN gradients, step skipped), double after a window of
//! clean steps — the scheme `torch.cuda.amp.GradScaler` implements.

/// Dynamic gradient scaler.
#[derive(Debug, Clone)]
pub struct GradScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    good_steps: u32,
    skipped: u64,
}

impl GradScaler {
    /// Scaler with PyTorch-default dynamics (`2¹⁶`, ×2 every 2000 clean
    /// steps, ÷2 on overflow).
    pub fn new() -> Self {
        Self::with_scale(65536.0)
    }

    /// Scaler with a chosen initial scale.
    pub fn with_scale(scale: f32) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        GradScaler {
            scale,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 2000,
            good_steps: 0,
            skipped: 0,
        }
    }

    /// Current loss scale: multiply the loss gradient by this before
    /// backward.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Number of optimizer steps skipped due to overflow.
    pub fn skipped_steps(&self) -> u64 {
        self.skipped
    }

    /// Divide gradients by the scale in place, reporting whether they are
    /// finite. Returns `true` if the step may proceed.
    pub fn unscale(&self, grads: &mut [f32]) -> bool {
        let inv = 1.0 / self.scale;
        let mut finite = true;
        for g in grads.iter_mut() {
            *g *= inv;
            finite &= g.is_finite();
        }
        finite
    }

    /// Report the outcome of a step: `found_overflow = true` skips the step
    /// and backs the scale off; otherwise the clean-step counter advances
    /// (growing the scale at the interval). Returns `true` if the optimizer
    /// step should be applied.
    pub fn update(&mut self, found_overflow: bool) -> bool {
        if found_overflow {
            self.scale = (self.scale * self.backoff_factor).max(1.0);
            self.good_steps = 0;
            self.skipped += 1;
            false
        } else {
            self.good_steps += 1;
            if self.good_steps >= self.growth_interval {
                self.scale *= self.growth_factor;
                self.good_steps = 0;
            }
            true
        }
    }
}

impl Default for GradScaler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscale_divides_and_detects_overflow() {
        let s = GradScaler::with_scale(4.0);
        let mut g = vec![8.0f32, -2.0];
        assert!(s.unscale(&mut g));
        assert_eq!(g, vec![2.0, -0.5]);
        let mut bad = vec![1.0f32, f32::INFINITY];
        assert!(!s.unscale(&mut bad));
    }

    #[test]
    fn overflow_halves_scale_and_skips() {
        let mut s = GradScaler::with_scale(1024.0);
        assert!(!s.update(true));
        assert_eq!(s.scale(), 512.0);
        assert_eq!(s.skipped_steps(), 1);
    }

    #[test]
    fn growth_after_interval() {
        let mut s = GradScaler::with_scale(2.0);
        s.growth_interval = 3;
        assert!(s.update(false));
        assert!(s.update(false));
        assert_eq!(s.scale(), 2.0);
        assert!(s.update(false));
        assert_eq!(s.scale(), 4.0, "third clean step doubles");
    }

    #[test]
    fn overflow_resets_growth_counter() {
        let mut s = GradScaler::with_scale(2.0);
        s.growth_interval = 2;
        s.update(false);
        s.update(true); // resets counter, halves
        assert_eq!(s.scale(), 1.0);
        s.update(false);
        assert_eq!(s.scale(), 1.0, "counter restarted");
        s.update(false);
        assert_eq!(s.scale(), 2.0);
    }

    #[test]
    fn scale_never_drops_below_one() {
        let mut s = GradScaler::with_scale(1.5);
        for _ in 0..10 {
            s.update(true);
        }
        assert!(s.scale() >= 1.0);
    }
}
