//! Stochastic gradient descent with optional momentum and decoupled weight
//! decay.

use crate::Optimizer;

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables the velocity buffer).
    pub momentum: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }
}

/// SGD state for one flat parameter buffer.
#[derive(Debug, Clone)]
pub struct Sgd {
    cfg: SgdConfig,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Optimizer for `n` parameters.
    pub fn new(n: usize, cfg: SgdConfig) -> Self {
        let velocity = if cfg.momentum != 0.0 {
            vec![0.0; n]
        } else {
            Vec::new()
        };
        Sgd { cfg, velocity }
    }
}

impl Optimizer for Sgd {
    fn step_with_lr(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.cfg.momentum != 0.0 {
            assert_eq!(
                self.velocity.len(),
                params.len(),
                "state sized for another buffer"
            );
            for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
                *v = self.cfg.momentum * *v + g;
                *p -= lr * (*v + self.cfg.weight_decay * *p);
            }
        } else {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= lr * (g + self.cfg.weight_decay * *p);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.cfg.lr
    }

    fn state_elems(&self) -> usize {
        self.velocity.len()
    }

    fn export_state(&self) -> (u64, Vec<Vec<f32>>) {
        // Exactly one buffer either way: empty when momentum is off, so the
        // exported shape is deterministic from the config alone.
        (0, vec![self.velocity.clone()])
    }

    fn import_state(&mut self, _t: u64, bufs: &[Vec<f32>]) -> Result<(), String> {
        if bufs.len() != 1 {
            return Err(format!("Sgd expects 1 state buffer, got {}", bufs.len()));
        }
        if bufs[0].len() != self.velocity.len() {
            return Err(format!(
                "Sgd velocity sized {}, got {}",
                self.velocity.len(),
                bufs[0].len()
            ));
        }
        self.velocity.copy_from_slice(&bufs[0]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_descends_quadratic() {
        // f(p) = p², grad = 2p. lr 0.25 converges.
        let mut p = vec![4.0f32];
        let mut opt = Sgd::new(
            1,
            SgdConfig {
                lr: 0.25,
                ..Default::default()
            },
        );
        for _ in 0..50 {
            let g = vec![2.0 * p[0]];
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 1e-4, "p = {}", p[0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = vec![0.0f32];
        let mut opt = Sgd::new(
            1,
            SgdConfig {
                lr: 1.0,
                momentum: 0.9,
                weight_decay: 0.0,
            },
        );
        opt.step(&mut p, &[1.0]);
        assert_eq!(p[0], -1.0);
        opt.step(&mut p, &[1.0]);
        // v = 0.9·1 + 1 = 1.9
        assert!((p[0] - (-1.0 - 1.9)).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut p = vec![10.0f32];
        let mut opt = Sgd::new(
            1,
            SgdConfig {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.5,
            },
        );
        opt.step(&mut p, &[0.0]);
        assert!((p[0] - (10.0 - 0.1 * 0.5 * 10.0)).abs() < 1e-6);
    }

    #[test]
    fn no_momentum_allocates_no_state() {
        let opt = Sgd::new(1000, SgdConfig::default());
        assert_eq!(opt.state_elems(), 0);
        let opt = Sgd::new(
            1000,
            SgdConfig {
                momentum: 0.9,
                ..Default::default()
            },
        );
        assert_eq!(opt.state_elems(), 1000);
    }
}
