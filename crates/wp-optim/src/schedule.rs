//! Learning-rate schedules.

/// A learning-rate schedule: maps step index to a multiplier on the base LR.
#[derive(Debug, Clone, Copy)]
pub enum LrSchedule {
    /// Constant multiplier 1.
    Constant,
    /// Linear warmup over `warmup` steps, then constant.
    Warmup {
        /// Steps of linear ramp from 0 to 1.
        warmup: u64,
    },
    /// Linear warmup then cosine decay to `min_ratio` at `total` steps.
    WarmupCosine {
        /// Steps of linear ramp.
        warmup: u64,
        /// Total steps of the schedule.
        total: u64,
        /// Final multiplier.
        min_ratio: f32,
    },
}

impl LrSchedule {
    /// Validated [`LrSchedule::WarmupCosine`] constructor.
    ///
    /// Rejects `total <= warmup` (the decay phase would be empty) and a
    /// `min_ratio` outside `[0, 1]` or NaN. The old code silently rewrote
    /// `total` to `warmup + 1` inside [`multiplier`](Self::multiplier),
    /// which turned a mis-specified schedule into an instant drop to
    /// `min_ratio` right after warmup instead of an error.
    pub fn warmup_cosine(warmup: u64, total: u64, min_ratio: f32) -> Result<Self, String> {
        if total <= warmup {
            return Err(format!(
                "WarmupCosine needs total > warmup, got total = {total}, warmup = {warmup}"
            ));
        }
        if !(0.0..=1.0).contains(&min_ratio) {
            return Err(format!(
                "WarmupCosine min_ratio must be in [0, 1], got {min_ratio}"
            ));
        }
        Ok(LrSchedule::WarmupCosine {
            warmup,
            total,
            min_ratio,
        })
    }

    /// Multiplier at `step` (0-based).
    ///
    /// For a `WarmupCosine` built directly with `total <= warmup` (bypassing
    /// [`warmup_cosine`](Self::warmup_cosine)) this debug-asserts; in release
    /// it saturates to `min_ratio` after warmup rather than producing NaN.
    pub fn multiplier(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Warmup { warmup } => {
                if warmup == 0 || step >= warmup {
                    1.0
                } else {
                    (step + 1) as f32 / warmup as f32
                }
            }
            LrSchedule::WarmupCosine {
                warmup,
                total,
                min_ratio,
            } => {
                if warmup > 0 && step < warmup {
                    return (step + 1) as f32 / warmup as f32;
                }
                debug_assert!(
                    total > warmup,
                    "WarmupCosine needs total > warmup (use LrSchedule::warmup_cosine), \
                     got total = {total}, warmup = {warmup}"
                );
                if total <= warmup {
                    return min_ratio;
                }
                let progress = ((step - warmup) as f32 / (total - warmup) as f32).clamp(0.0, 1.0);
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
                min_ratio + (1.0 - min_ratio) * cos
            }
        }
    }

    /// Learning rate at `step` given a base LR.
    pub fn lr_at(&self, base_lr: f32, step: u64) -> f32 {
        base_lr * self.multiplier(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        assert_eq!(LrSchedule::Constant.multiplier(0), 1.0);
        assert_eq!(LrSchedule::Constant.multiplier(10_000), 1.0);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { warmup: 4 };
        assert_eq!(s.multiplier(0), 0.25);
        assert_eq!(s.multiplier(1), 0.5);
        assert_eq!(s.multiplier(3), 1.0);
        assert_eq!(s.multiplier(100), 1.0);
    }

    #[test]
    fn cosine_decays_to_min() {
        let s = LrSchedule::WarmupCosine {
            warmup: 2,
            total: 12,
            min_ratio: 0.1,
        };
        assert!(s.multiplier(0) < s.multiplier(1));
        let peak = s.multiplier(2);
        assert!((peak - 1.0).abs() < 1e-6);
        let end = s.multiplier(12);
        assert!((end - 0.1).abs() < 1e-6);
        // Monotone decreasing after warmup.
        let mut prev = peak;
        for step in 3..=12 {
            let m = s.multiplier(step);
            assert!(m <= prev + 1e-6, "not monotone at {step}");
            prev = m;
        }
        // Clamped past the end.
        assert!((s.multiplier(1000) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn lr_at_scales_base() {
        let s = LrSchedule::Warmup { warmup: 2 };
        assert_eq!(s.lr_at(0.2, 0), 0.1);
    }

    #[test]
    fn warmup_cosine_constructor_validates() {
        assert!(LrSchedule::warmup_cosine(2, 12, 0.1).is_ok());
        // The decay phase must be non-empty: total <= warmup is an error, not
        // a silent rewrite of `total`.
        assert!(LrSchedule::warmup_cosine(10, 10, 0.1).is_err());
        assert!(LrSchedule::warmup_cosine(10, 5, 0.1).is_err());
        assert!(LrSchedule::warmup_cosine(2, 12, -0.1).is_err());
        assert!(LrSchedule::warmup_cosine(2, 12, 1.5).is_err());
        assert!(LrSchedule::warmup_cosine(2, 12, f32::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "total > warmup")]
    #[cfg(debug_assertions)]
    fn degenerate_warmup_cosine_debug_asserts() {
        // Built directly, bypassing the validated constructor.
        let s = LrSchedule::WarmupCosine {
            warmup: 10,
            total: 5,
            min_ratio: 0.1,
        };
        let _ = s.multiplier(10);
    }

    #[test]
    fn degenerate_warmup_cosine_never_yields_nan() {
        let s = LrSchedule::WarmupCosine {
            warmup: 10,
            total: 5,
            min_ratio: 0.1,
        };
        // Warmup steps are unaffected by the degenerate decay phase.
        assert_eq!(s.multiplier(0), 0.1);
        if !cfg!(debug_assertions) {
            // Release saturates to min_ratio instead of 0/0 = NaN.
            assert_eq!(s.multiplier(10), 0.1);
            assert_eq!(s.multiplier(100), 0.1);
        }
    }
}
