//! Umbrella crate: re-exports the workspace crates so the root `tests/`
//! directory can exercise the whole stack through one dependency.

pub use weipipe as runtime;
pub use wp_comm as comm;
pub use wp_nn as nn;
pub use wp_optim as optim;
pub use wp_sched as sched;
pub use wp_sim as sim;
pub use wp_tensor as tensor;
