//! Quickstart: train a small Llama-style model with WeiPipe-Interleave on
//! four worker threads, and verify the result against single-process
//! training.
//!
//! ```text
//! cargo run --release -p wp-examples --bin quickstart
//! ```

use weipipe::{run_distributed, run_single, OptimKind, Strategy, TrainSetup};
use wp_comm::LinkModel;
use wp_nn::ModelConfig;
use wp_tensor::DType;

fn main() {
    // A 4-layer model small enough to train on threads in seconds, but
    // structurally a real Llama block stack (RMSNorm, RoPE attention,
    // SwiGLU FFN, tied causal-LM loss).
    let model = ModelConfig::llama_like(32, 2, 4, 64, 64);
    let setup = TrainSetup {
        model,
        seed: 7,
        microbatch: 2,
        seq: 16,
        microbatches: 8,
        iters: 8,
        lr_schedule: wp_optim::LrSchedule::Constant,
        loss_scale: 1.0,
        optim: OptimKind::AdamW { lr: 3e-3 },
        wire: DType::F32,
        link: LinkModel::instant(),
        recompute: false,
        data: weipipe::DataSource::Synthetic,
        faults: None,
        comm: wp_comm::CommConfig::default(),
    };

    println!("training 4-layer model on 4 ranks with WeiPipe-Interleave…\n");
    let wp = run_distributed(Strategy::WeiPipeInterleave, 4, &setup).expect("healthy world");
    let reference = run_single(&setup);

    println!("iter |  WeiPipe loss | single-process loss");
    for (i, (a, b)) in wp.losses.iter().zip(&reference.losses).enumerate() {
        println!("{i:>4} | {a:>13.5} | {b:>19.5}");
    }
    println!(
        "\nmax loss difference:  {:.2e}",
        wp.max_loss_diff(&reference)
    );
    println!("max weight difference: {:.2e}", wp.max_param_diff(&reference));
    println!(
        "bytes moved by the weight pipeline: {:.1} MiB",
        wp.bytes_sent as f64 / (1 << 20) as f64
    );
    assert!(
        wp.losses.last().expect("ran") < wp.losses.first().expect("ran"),
        "training should reduce the loss"
    );
    println!("\nWeiPipe trained the model to the same trajectory as one process. ✓");
}
