//! Quickstart: train a small Llama-style model with WeiPipe-Interleave on
//! four worker threads, and verify the result against single-process
//! training.
//!
//! ```text
//! cargo run --release -p wp-examples --bin quickstart
//! ```
//!
//! Pass `--trace-out <path>` to record every rank's compute/comm spans and
//! export them as Chrome trace-event JSON — open the file at
//! <https://ui.perfetto.dev> (or `chrome://tracing`). The traced run also
//! injects benign (delay-only) faults so the fault instant events are
//! visible on the timeline; delay-only faults never change the result.
//!
//! Pass `--metrics-out <path>` to meter the run (counters, gauges,
//! latency histograms on every rank) and export the world snapshot:
//! Prometheus text exposition by default, JSON when the path ends in
//! `.json`. Metrics are strictly observational — the metered run trains
//! bit-identically to an unmetered one.

use weipipe::{run_distributed, run_single, OptimKind, Strategy, TrainSetup};
use wp_comm::{FaultPlan, LinkModel};
use wp_nn::ModelConfig;
use wp_tensor::DType;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| args.get(i + 1).expect("--trace-out needs a path").clone());
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .map(|i| args.get(i + 1).expect("--metrics-out needs a path").clone());

    // A 4-layer model small enough to train on threads in seconds, but
    // structurally a real Llama block stack (RMSNorm, RoPE attention,
    // SwiGLU FFN, tied causal-LM loss).
    let model = ModelConfig::llama_like(32, 2, 4, 64, 64);
    let setup = TrainSetup {
        model,
        seed: 7,
        microbatch: 2,
        seq: 16,
        microbatches: 8,
        iters: 8,
        lr_schedule: wp_optim::LrSchedule::Constant,
        loss_scale: 1.0,
        optim: OptimKind::AdamW { lr: 3e-3 },
        wire: DType::F32,
        link: LinkModel::instant(),
        recompute: false,
        data: weipipe::DataSource::Synthetic,
        faults: trace_out
            .is_some()
            .then(|| FaultPlan::new(7).with_delay_jitter(std::time::Duration::from_micros(40))),
        comm: wp_comm::CommConfig::default(),
        trace: if trace_out.is_some() {
            weipipe::TraceConfig::on()
        } else {
            weipipe::TraceConfig::off()
        },
        metrics: if metrics_out.is_some() {
            weipipe::MetricsConfig::on()
        } else {
            weipipe::MetricsConfig::off()
        },
        overlap: true,
        transport: weipipe::TransportKind::InProcess,
        w_lag: None,
        chunks: None,
        group: None,
        resume: None,
        start_iter: 0,
    };

    println!("training 4-layer model on 4 ranks with WeiPipe-Interleave…\n");
    let wp = run_distributed(Strategy::WeiPipeInterleave, 4, &setup).expect("healthy world");
    let reference = run_single(&setup);

    println!("iter |  WeiPipe loss | single-process loss");
    for (i, (a, b)) in wp.losses.iter().zip(&reference.losses).enumerate() {
        println!("{i:>4} | {a:>13.5} | {b:>19.5}");
    }
    println!(
        "\nmax loss difference:  {:.2e}",
        wp.max_loss_diff(&reference)
    );
    println!(
        "max weight difference: {:.2e}",
        wp.max_param_diff(&reference)
    );
    println!(
        "bytes moved by the weight pipeline: {:.1} MiB",
        wp.bytes_sent as f64 / (1 << 20) as f64
    );
    assert!(
        wp.losses.last().expect("ran") < wp.losses.first().expect("ran"),
        "training should reduce the loss"
    );

    if let Some(path) = trace_out {
        let trace = wp.trace.as_ref().expect("tracing was enabled");
        let json = wp_trace::export_chrome_json(trace);
        let stats = wp_trace::validate_chrome_json(&json).expect("export must be valid");
        assert!(
            stats.instants > 0,
            "injected faults must appear as instant events"
        );
        std::fs::write(&path, &json).expect("write trace file");
        println!(
            "\nwrote {} spans across {} ranks to {path} (measured bubble ratio {:.1}%)",
            trace.span_count(),
            trace.tracks.len(),
            trace.bubble_ratio() * 100.0
        );
        println!("open it at https://ui.perfetto.dev or chrome://tracing");
    }

    if let Some(path) = metrics_out {
        use wp_metrics::Counter;
        let snap = wp.metrics.as_ref().expect("metrics were enabled");
        let text = if path.ends_with(".json") {
            let json = wp_metrics::export_json(snap);
            wp_metrics::validate_json(&json).expect("JSON export must validate");
            json
        } else {
            let prom = wp_metrics::export_prometheus(snap);
            wp_metrics::validate_prometheus(&prom).expect("Prometheus export must validate");
            prom
        };
        std::fs::write(&path, &text).expect("write metrics file");
        println!(
            "\nwrote metrics for {} ranks to {path}: {} steps, {} P2P bytes, {} collective bytes",
            snap.world_size(),
            snap.total(Counter::StepsCompleted) / snap.world_size() as u64,
            snap.total(Counter::P2pBytesSent),
            snap.total(Counter::CollBytesSent),
        );
    }

    println!("\nWeiPipe trained the model to the same trajectory as one process. ✓");
}
