//! Character-level language model trained with WeiPipe on real text.
//!
//! The corpus is the paper's own abstract; a 4-layer model learns it with
//! WeiPipe-Interleave across 4 worker threads, and then greedy decoding
//! regenerates the text it memorised — an end-to-end demonstration that the
//! weight pipeline trains a *working* model, not just matching tensors.
//!
//! ```text
//! cargo run --release -p wp-examples --bin char_lm
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;
use weipipe::{run_distributed, run_single, DataSource, OptimKind, Strategy, TrainSetup};
use wp_comm::LinkModel;
use wp_nn::generate::generate_greedy;
use wp_nn::{Model, ModelConfig};
use wp_optim::LrSchedule;
use wp_tensor::DType;

const CORPUS: &str = "training large models with long context lengths requires \
significant communication overhead, which becomes a bottleneck in distributed \
training. weipipe is a weight pipeline parallelism method designed to reduce \
communication costs effectively. by dividing the model weights into pipeline \
stages and overlapping communication with computation, weipipe minimizes idle \
times and achieves a communication-efficient training paradigm. ";

/// Char-level tokenizer over the corpus alphabet.
struct CharVocab {
    to_id: BTreeMap<char, u32>,
    to_char: Vec<char>,
}

impl CharVocab {
    fn new(text: &str) -> Self {
        let mut chars: Vec<char> = text.chars().collect();
        chars.sort_unstable();
        chars.dedup();
        let to_id = chars
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u32))
            .collect();
        CharVocab {
            to_id,
            to_char: chars,
        }
    }

    fn encode(&self, text: &str) -> Vec<u32> {
        text.chars().map(|c| self.to_id[&c]).collect()
    }

    fn decode(&self, ids: &[u32]) -> String {
        ids.iter().map(|&i| self.to_char[i as usize]).collect()
    }

    fn len(&self) -> usize {
        self.to_char.len()
    }
}

fn main() {
    let vocab = CharVocab::new(CORPUS);
    let tokens = Arc::new(vocab.encode(CORPUS));
    println!(
        "corpus: {} chars, alphabet {} symbols\n",
        tokens.len(),
        vocab.len()
    );

    let model = ModelConfig::llama_like(64, 4, 4, vocab.len(), 64);
    let setup = TrainSetup {
        model: model.clone(),
        seed: 1234,
        microbatch: 8,
        seq: 48,
        microbatches: 8,
        iters: 60,
        optim: OptimKind::AdamW { lr: 6e-3 },
        lr_schedule: LrSchedule::WarmupCosine {
            warmup: 5,
            total: 60,
            min_ratio: 0.1,
        },
        loss_scale: 1.0,
        wire: DType::F32,
        link: LinkModel::instant(),
        recompute: false,
        data: DataSource::Corpus(tokens.clone()),
        faults: None,
        comm: wp_comm::CommConfig::default(),
        trace: weipipe::TraceConfig::off(),
        metrics: weipipe::MetricsConfig::off(),
        overlap: true,
        transport: weipipe::TransportKind::InProcess,
        w_lag: None,
        chunks: None,
        group: None,
        resume: None,
        start_iter: 0,
    };

    println!(
        "training {} params on 4 ranks with WeiPipe-Interleave…",
        model.total_params()
    );
    let out = run_distributed(Strategy::WeiPipeInterleave, 4, &setup).expect("healthy world");
    for (i, l) in out.losses.iter().enumerate() {
        if i % 10 == 0 || i + 1 == out.losses.len() {
            println!("  iter {i:>3}: loss {l:.4}");
        }
    }
    println!(
        "\n{:.1} kTok/s across 4 threads, {:.1} MiB weight traffic",
        out.tokens_per_second(&setup) / 1000.0,
        out.bytes_sent as f64 / (1 << 20) as f64
    );

    // Rebuild a Model from the trained parameters, checkpoint it, reload,
    // and sample from the reloaded copy.
    let trained = Model::from_parts(
        model.clone(),
        out.embed.clone(),
        out.blocks.clone(),
        out.head.clone(),
    )
    .expect("trained buffers match the config");
    let ckpt = std::env::temp_dir().join("weipipe_char_lm.wpckpt");
    wp_nn::checkpoint::save_model(&ckpt, &trained).expect("save checkpoint");
    let trained = wp_nn::checkpoint::load_model(&ckpt).expect("load checkpoint");
    println!("\ncheckpoint round-trip via {}", ckpt.display());
    let prompt = "weipipe is a ";
    let generated = generate_greedy(&trained, &vocab.encode(prompt), 60);
    println!("\nprompt:    {prompt:?}");
    println!("generated: {:?}", vocab.decode(&generated));

    // Sanity: the distributed result must match single-process training.
    let reference = run_single(&setup);
    println!(
        "\nconsistency vs single process: loss diff {:.2e}, weight diff {:.2e}",
        out.max_loss_diff(&reference),
        out.max_param_diff(&reference)
    );
    assert!(
        out.losses.last().expect("ran") < &1.0,
        "model should fit the corpus"
    );
}
