//! Commodity-cluster scenario from the paper's introduction: you have two
//! GPU boxes joined by ordinary 10 Gb Ethernet and want to train a
//! long-context model across them. Which strategy survives the slow link?
//!
//! Uses the calibrated simulator at the paper's full scale (16×A800,
//! H=2048, S=16384), then demonstrates the same effect live by pacing the
//! thread runtime's links.
//!
//! ```text
//! cargo run --release -p wp-examples --bin commodity_cluster
//! ```

use std::time::Instant;
use weipipe::{run_distributed, OptimKind, Strategy, TrainSetup};
use wp_comm::LinkModel;
use wp_nn::ModelConfig;
use wp_sim::experiments::{run_cell, RowConfig};
use wp_sim::{ClusterSpec, Link};
use wp_tensor::DType;

fn main() {
    // --- Part 1: paper-scale simulation --------------------------------
    println!("## Simulated: 16×A800, two NVLink boxes, inter-box link sweep");
    println!("   (H=2048, S=16384, G=4, 32 layers — tokens/s/GPU)\n");
    println!(
        "{:>20} | {:>8} {:>8} {:>8}",
        "inter-box link", "1F1B", "FSDP", "WeiPipe"
    );
    let row = RowConfig {
        hidden: 2048,
        seq: 16384,
        microbatch: 4,
    };
    for (name, inter) in [
        ("NVLink 400 GB/s", Link::nvlink_a800()),
        ("10 GbE 1.25 GB/s", Link::ethernet_10g()),
    ] {
        let cluster = ClusterSpec {
            ranks: 16,
            node_size: 8,
            intra: Link::nvlink_a800(),
            inter,
        };
        let samples = 8 * 16 * row.microbatch;
        let f1b = run_cell(Strategy::OneFOneB, row, 32, &cluster, samples);
        let fsdp = run_cell(Strategy::Fsdp, row, 32, &cluster, samples);
        let wp = run_cell(Strategy::WeiPipeInterleave, row, 32, &cluster, samples);
        println!(
            "{name:>20} | {:>8.0} {:>8.0} {:>8.0}",
            f1b.throughput, fsdp.throughput, wp.throughput
        );
    }

    // --- Part 2: live, with paced links ---------------------------------
    // A small model whose *activations* dominate its weights (long S, tiny
    // H), trained over links throttled enough that the difference is
    // visible in wall-clock on a laptop.
    // Above the §3 crossover (G·S = 2048 > 18·H·L/P = 576), so the weight
    // pipeline moves fewer bytes per microbatch than the activation pipe.
    println!("\n## Live: 4 ranks, links paced to 60 MB/s, H=32, S=256, G=8\n");
    let model = ModelConfig::llama_like(32, 2, 4, 64, 256);
    let setup = TrainSetup {
        model,
        seed: 9,
        microbatch: 8,
        seq: 256,
        microbatches: 8,
        iters: 1,
        lr_schedule: wp_optim::LrSchedule::Constant,
        loss_scale: 1.0,
        optim: OptimKind::Sgd { lr: 0.1 },
        wire: DType::F32,
        link: LinkModel {
            bandwidth_bps: 60e6,
            latency_s: 2e-4,
        },
        recompute: false,
        data: weipipe::DataSource::Synthetic,
        faults: None,
        comm: wp_comm::CommConfig::default(),
        trace: weipipe::TraceConfig::off(),
        metrics: weipipe::MetricsConfig::off(),
        overlap: true,
        transport: weipipe::TransportKind::InProcess,
        w_lag: None,
        chunks: None,
        group: None,
        resume: None,
        start_iter: 0,
    };
    for strategy in [Strategy::OneFOneB, Strategy::WeiPipeInterleave] {
        let t0 = Instant::now();
        let out = run_distributed(strategy, 4, &setup).expect("healthy world");
        println!(
            "{:<18} wall {:>6.2?}  bytes {:>10}  final loss {:.4}",
            strategy.label(),
            t0.elapsed(),
            out.bytes_sent,
            out.losses.last().expect("ran")
        );
    }
    println!("\nSame model, same data, same loss — different wires.");
}
