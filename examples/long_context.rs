//! Long-context motivation: measure (with the byte-exact traffic meter of
//! the real runtime) how communication volume scales with sequence length
//! under activation-passing 1F1B versus WeiPipe — the paper's §3 crossover,
//! observed on live training runs rather than on paper.
//!
//! ```text
//! cargo run --release -p wp-examples --bin long_context
//! ```

use weipipe::{run_distributed, OptimKind, Strategy, TrainSetup};
use wp_comm::LinkModel;
use wp_nn::ModelConfig;
use wp_sched::analysis::crossover_ratio;
use wp_tensor::DType;

fn traffic_for(seq: usize, strategy: Strategy) -> u64 {
    let model = ModelConfig::llama_like(32, 2, 4, 64, seq.max(64));
    let setup = TrainSetup {
        model,
        seed: 3,
        microbatch: 2,
        seq,
        microbatches: 4,
        iters: 1,
        lr_schedule: wp_optim::LrSchedule::Constant,
        loss_scale: 1.0,
        optim: OptimKind::Sgd { lr: 0.1 },
        wire: DType::F32,
        link: LinkModel::instant(),
        recompute: false,
        data: weipipe::DataSource::Synthetic,
        faults: None,
        comm: wp_comm::CommConfig::default(),
        trace: weipipe::TraceConfig::off(),
        metrics: weipipe::MetricsConfig::off(),
        overlap: true,
        transport: weipipe::TransportKind::InProcess,
        w_lag: None,
        chunks: None,
        group: None,
        resume: None,
        start_iter: 0,
    };
    run_distributed(strategy, 4, &setup)
        .expect("healthy world")
        .bytes_sent
}

fn main() {
    println!("communication bytes for ONE training iteration (4 ranks, H=32, G=2):\n");
    println!(
        "{:>5} | {:>12} | {:>12} | {:>9} | GS/(12H)",
        "S", "1F1B bytes", "WeiPipe bytes", "ratio"
    );
    let mut wp_bytes = Vec::new();
    for seq in [8usize, 16, 32, 64] {
        let f1b = traffic_for(seq, Strategy::OneFOneB);
        let wp = traffic_for(seq, Strategy::WeiPipeInterleave);
        wp_bytes.push(wp);
        println!(
            "{seq:>5} | {f1b:>12} | {wp:>12} | {:>9.2} | {:.2}",
            f1b as f64 / wp as f64,
            crossover_ratio(2, seq, 32),
        );
    }
    // The paper's headline property, measured: WeiPipe's bytes do not grow
    // with context length (weight traffic only), while 1F1B's grow linearly.
    let spread =
        *wp_bytes.iter().max().expect("ran") as f64 / *wp_bytes.iter().min().expect("ran") as f64;
    println!(
        "\nWeiPipe traffic spread across an 8× context sweep: {spread:.3}× \
         (activation-passing grows ~8×)."
    );
    assert!(spread < 1.05, "WeiPipe traffic must be context-independent");
}
