//! Schedule explorer: print the simulated timeline of any strategy at any
//! (P, N) to see where its bubbles live.
//!
//! ```text
//! cargo run --release -p wp-examples --bin schedule_explorer -- \
//!     --strategy weipipe --ranks 4 --microbatches 8
//! ```
//!
//! Strategies: gpipe | 1f1b | zb1 | zb2 | fsdp | ddp | naive | weipipe |
//! wzb1 | wzb2 | hier. The hierarchical ring takes `--group <g>` (ranks
//! per replica ring, default `ranks / 2`) and prices on the multi-node
//! `ClusterSpec::scaling` layout so its inter-group hops cross real node
//! boundaries.
//!
//! To *search* the schedule space instead of inspecting one point, use the
//! autotuner this explorer grew into: `cargo run --release -p wp-bench
//! --bin tune` sweeps strategy × microbatches × W-lag × overlap × chunking
//! with the same simulator as oracle and reports the best validated
//! schedule per (model, cluster) pair.

use wp_sched::{build, validate, PipelineSpec, Strategy};
use wp_sim::render::ascii_timeline;
use wp_sim::{simulate, ClusterSpec, CostModel, GpuSpec, ModelDims, SimOptions};

fn parse_strategy(name: &str) -> Strategy {
    match name {
        "gpipe" => Strategy::GPipe,
        "1f1b" => Strategy::OneFOneB,
        "zb1" => Strategy::Zb1,
        "zb2" => Strategy::Zb2,
        "fsdp" => Strategy::Fsdp,
        "ddp" => Strategy::Ddp,
        "naive" => Strategy::WeiPipeNaive,
        "weipipe" => Strategy::WeiPipeInterleave,
        "wzb1" => Strategy::Wzb1,
        "wzb2" => Strategy::Wzb2,
        "hier" => Strategy::WeiPipeHier,
        other => panic!("unknown strategy '{other}'"),
    }
}

fn arg(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let strategy = parse_strategy(&arg(&args, "--strategy").unwrap_or_else(|| "weipipe".into()));
    let ranks: usize = arg(&args, "--ranks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let n: usize = arg(&args, "--microbatches")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);

    let group: Option<usize> = if strategy == Strategy::WeiPipeHier {
        Some(
            arg(&args, "--group")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| (ranks / 2).max(2)),
        )
    } else {
        None
    };

    let mut spec = match strategy {
        Strategy::Zb1 | Strategy::Zb2 | Strategy::Wzb1 | Strategy::Wzb2 => {
            PipelineSpec::new(ranks, n).without_recompute()
        }
        _ => PipelineSpec::new(ranks, n),
    };
    if let Some(g) = group {
        spec = spec.with_group(g);
    }
    let sched = build(strategy, spec);
    validate(&sched).expect("schedule is valid");
    let st = sched.stats();
    println!(
        "{} schedule: P={ranks}, N={n} — {} ops (F {}, B {}, b {}, w {}, U {}, send {}, recv {}, coll {})",
        strategy.label(),
        sched.total_ops(),
        st.fwd, st.bwd_full, st.bwd_data, st.bwd_weight, st.updates, st.sends, st.recvs,
        st.collectives
    );
    println!("compute balance per rank: {:?}\n", sched.compute_balance());
    let dims = ModelDims::paper(2048, 32, 4096, 4);
    let cost = CostModel::for_schedule(dims, GpuSpec::a800(), &sched);
    // The hierarchical ring only makes sense on a multi-node layout: price
    // it with one node per replica group so the inter-group gradient hops
    // cross a genuinely slow link.
    let cluster = match group {
        Some(g) if g < ranks => ClusterSpec::scaling(ranks, g),
        _ => ClusterSpec::nvlink_island(ranks),
    };
    let result = simulate(&sched, &cost, &cluster, SimOptions::default()).expect("simulates");
    println!("{}", ascii_timeline(&result, 120));
    println!("legend: F forward · B fused backward · b B-pass · w W-pass · U update · '·' idle");
}
