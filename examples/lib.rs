//! This library target exists only so the example binaries can live at the
//! package root (`examples/quickstart.rs` etc.), matching the workspace
//! layout described in the README.
