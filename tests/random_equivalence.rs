//! Randomized cross-strategy equivalence: for arbitrary small
//! configurations, any runtime strategy must reproduce the single-process
//! reference. This is the fuzzer over the whole stack — builders,
//! interpreter, comm, kernels, optimizers at once.

use proptest::prelude::*;
use weipipe::{run_distributed, run_single, OptimKind, TrainSetup};
use wp_sched::Strategy as Strat;

fn arb_runtime_strategy() -> impl Strategy<Value = Strat> {
    prop::sample::select(weipipe::runtime_strategies())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn any_strategy_any_shape_matches_reference(
        strategy in arb_runtime_strategy(),
        p_pick in 0usize..2,
        lpc in 1usize..3,
        n_mult in 1usize..3,
        adam in any::<bool>(),
        recompute in any::<bool>(),
        seed in 0u64..1000
    ) {
        let p = [2usize, 4][p_pick];
        let mut setup = TrainSetup::tiny(p * lpc, p * n_mult);
        setup.seed = seed;
        setup.iters = 2;
        setup.recompute = recompute;
        setup.optim = if adam {
            OptimKind::AdamW { lr: 2e-3 }
        } else {
            OptimKind::Sgd { lr: 0.1 }
        };
        let reference = run_single(&setup);
        let out = run_distributed(strategy, p, &setup).expect("healthy world");
        let dl = out.max_loss_diff(&reference);
        let dp = out.max_param_diff(&reference);
        prop_assert!(
            dl < 5e-4,
            "{:?} P={} L={} N={} seed={}: loss diff {}",
            strategy, p, p * lpc, p * n_mult, seed, dl
        );
        prop_assert!(
            dp < 5e-3,
            "{:?} P={} L={} N={} seed={}: param diff {}",
            strategy, p, p * lpc, p * n_mult, seed, dp
        );
    }
}
