//! Communication-volume properties, verified on the *real* runtime with the
//! byte-exact traffic meter — the paper's §3 argument as executable fact —
//! plus the agreement between the simulator's byte accounting and the bytes
//! the thread runtime actually moves.

use weipipe::{run_distributed, Strategy, TrainSetup};
use wp_nn::ModelConfig;
use wp_sched::analysis::{traffic, ByteModel};
use wp_sched::{build, PipelineSpec};
use wp_tensor::DType;

fn setup_with(seq: usize, microbatch: usize, layers: usize, n: usize) -> TrainSetup {
    let mut model = ModelConfig::tiny(layers);
    model.max_seq = seq.max(model.max_seq);
    let mut s = TrainSetup::tiny(layers, n);
    s.model = model;
    s.seq = seq;
    s.microbatch = microbatch;
    s.iters = 1;
    s
}

#[test]
fn weipipe_bytes_independent_of_context_and_microbatch() {
    let run = |setup: &TrainSetup| {
        run_distributed(Strategy::WeiPipeInterleave, 4, setup).expect("healthy world")
    };
    let base = run(&setup_with(8, 1, 4, 8));
    let long = run(&setup_with(32, 1, 4, 8));
    let fat = run(&setup_with(8, 4, 4, 8));
    assert_eq!(
        base.bytes_sent, long.bytes_sent,
        "4× context must not change WeiPipe traffic"
    );
    assert_eq!(
        base.bytes_sent, fat.bytes_sent,
        "4× microbatch must not change WeiPipe traffic"
    );
}

#[test]
fn act_passing_bytes_scale_with_context() {
    let base =
        run_distributed(Strategy::OneFOneB, 4, &setup_with(8, 2, 4, 8)).expect("healthy world");
    let long =
        run_distributed(Strategy::OneFOneB, 4, &setup_with(32, 2, 4, 8)).expect("healthy world");
    // Boundary activations quadruple; embed/head all-reduce is unchanged, so
    // expect strictly more but not exactly 4×.
    assert!(
        long.bytes_sent as f64 > base.bytes_sent as f64 * 1.5,
        "1F1B traffic must grow with context: {} vs {}",
        base.bytes_sent,
        long.bytes_sent
    );
}

/// The simulator and the runtime must charge the same bytes for the same
/// schedule: predicted P2P traffic (schedule analysis × wire sizes) equals
/// the runtime meter's P2P counters exactly.
#[test]
fn simulated_traffic_equals_measured_traffic() {
    for strategy in [
        Strategy::WeiPipeInterleave,
        Strategy::WeiPipeNaive,
        Strategy::OneFOneB,
        Strategy::GPipe,
        Strategy::Zb1,
    ] {
        let setup = setup_with(8, 2, 4, 8);
        let p = 4;
        let sched = build(
            strategy,
            PipelineSpec::new(p, setup.microbatches).without_recompute(),
        );
        let cfg = &setup.model;
        let lpc = cfg.layers / p;
        let block_len = wp_nn::params::BlockLayout::new(cfg).len();
        let elem = DType::F32.size_bytes() as u64; // the test runs an f32 wire
        let bytes = ByteModel {
            weight_chunk: (lpc * block_len) as u64 * elem,
            grad_chunk: (lpc * block_len) as u64 * elem,
            act_boundary: (setup.microbatch * setup.seq * cfg.hidden) as u64 * elem,
            act_grad_boundary: (setup.microbatch * setup.seq * cfg.hidden) as u64 * elem,
        };
        let predicted: u64 = traffic(&sched, &bytes).iter().map(|r| r.p2p).sum();

        let out = run_distributed(strategy, p, &setup).expect("healthy world");
        // The meter also counts collective traffic (embed/head all-reduce,
        // final assembly); compare P2P only via the prediction being a lower
        // bound that must be contained. We re-run to get the split.
        // run_distributed returns total; recompute the split directly:
        let (outs, meter) = wp_comm::World::run(p, setup.link, |comm| {
            let mut rt = weipipe::interp::RankRuntime::new(&setup, &sched, comm);
            rt.run_iteration(&sched, 0).expect("healthy world");
            rt.assemble(&sched).expect("healthy world");
        });
        drop(outs);
        let measured_p2p: u64 = (0..p).map(|r| meter.rank(r).p2p_bytes).sum();
        assert_eq!(
            measured_p2p, predicted,
            "{strategy:?}: simulator predicts {predicted} P2P bytes, runtime moved {measured_p2p}"
        );
        assert!(out.bytes_sent >= predicted);
    }
}

#[test]
fn interleave_traffic_is_three_chunks_per_turn_steady_state() {
    // §4.2.2: per turn, each worker forwards 2 weight chunks + 1 gradient
    // chunk. Check the per-iteration total against the closed form within
    // the warmup/drain tolerance.
    let p = 4;
    let n = 32; // 8 rounds: steady state dominates
    let setup = setup_with(8, 1, 4, n);
    let out = run_distributed(Strategy::WeiPipeInterleave, p, &setup).expect("healthy world");
    let block_len = wp_nn::params::BlockLayout::new(&setup.model).len() as u64;
    let chunk_bytes = block_len * 4; // lpc = 1, f32 wire
    let turns = ((n / p) + 2) * p;
    let steady_estimate = 3 * chunk_bytes * (p as u64) * turns as u64;
    let total = out.bytes_sent;
    assert!(
        total > steady_estimate / 2 && total < steady_estimate * 2,
        "total {total} vs steady-state estimate {steady_estimate}"
    );
}
