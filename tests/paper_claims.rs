//! The paper's evaluation claims, asserted against the calibrated
//! simulator: who wins where, by roughly what factor, and where the OOMs
//! fall. These are the acceptance tests for EXPERIMENTS.md.

use wp_sched::Strategy;
use wp_sim::experiments::{
    fig7_weak_large, fig9_strong_large, run_cell, table2, table4, RowConfig, TABLE_STRATEGIES,
};
use wp_sim::ClusterSpec;

fn cell(
    cells: &[wp_sim::experiments::CellResult],
    s: Strategy,
) -> &wp_sim::experiments::CellResult {
    cells
        .iter()
        .find(|c| c.strategy == s)
        .expect("strategy present")
}

#[test]
fn table2_weipipe_wins_every_row() {
    // Paper §6.1: "WeiPipe consistently demonstrates higher throughput
    // across almost all configurations" on the 16-GPU environment 1 —
    // 22–80% over the best baseline depending on the row.
    for (row, cells) in table2() {
        let wp = cell(&cells, Strategy::WeiPipeInterleave);
        assert!(!wp.oom, "WeiPipe must fit at {row:?}");
        for s in TABLE_STRATEGIES {
            if s == Strategy::WeiPipeInterleave {
                continue;
            }
            let c = cell(&cells, s);
            if c.oom {
                continue;
            }
            assert!(
                wp.throughput > c.throughput,
                "{row:?}: WeiPipe {:.0} must beat {} {:.0}",
                wp.throughput,
                s.label(),
                c.throughput
            );
        }
    }
}

#[test]
fn table2_headline_factors() {
    // Spot-check the paper's two headline ratios. H=2048/S=4096: paper has
    // WeiPipe 1.56× over 1F1B and FSDP; H=4096/S=16384: 1.22× over 1F1B,
    // 1.78× over FSDP. Require the same direction within generous bands.
    let rows = table2();
    let r2048 = rows
        .iter()
        .find(|(r, _)| r.hidden == 2048 && r.seq == 4096)
        .expect("row exists");
    let wp = cell(&r2048.1, Strategy::WeiPipeInterleave).throughput;
    let f1b = cell(&r2048.1, Strategy::OneFOneB).throughput;
    let ratio = wp / f1b;
    assert!(
        (1.2..2.2).contains(&ratio),
        "H2048/S4096 WeiPipe/1F1B = {ratio:.2}"
    );

    let r4096 = rows
        .iter()
        .find(|(r, _)| r.hidden == 4096 && r.seq == 16384)
        .expect("row exists");
    let wp = cell(&r4096.1, Strategy::WeiPipeInterleave).throughput;
    let fsdp = cell(&r4096.1, Strategy::Fsdp).throughput;
    let ratio = wp / fsdp;
    assert!(
        (1.1..2.5).contains(&ratio),
        "H4096/S16384 WeiPipe/FSDP = {ratio:.2}"
    );
}

#[test]
fn table2_zb_memory_blowup_and_oom_pattern() {
    // Paper: ZB strategies OOM at large H (Flash-Attention makes their
    // retained activations dominate); 1F1B/FSDP/WeiPipe never OOM.
    for (row, cells) in table2() {
        assert!(!cell(&cells, Strategy::OneFOneB).oom, "{row:?}");
        assert!(!cell(&cells, Strategy::Fsdp).oom, "{row:?}");
        assert!(!cell(&cells, Strategy::WeiPipeInterleave).oom, "{row:?}");
        let zb1 = cell(&cells, Strategy::Zb1);
        let f1b = cell(&cells, Strategy::OneFOneB);
        assert!(
            zb1.mem_gib > 1.2 * f1b.mem_gib,
            "{row:?}: ZB1 {:.1} GiB should exceed 1F1B {:.1} GiB",
            zb1.mem_gib,
            f1b.mem_gib
        );
        if row.hidden == 4096 && row.seq != 8192 {
            assert!(cell(&cells, Strategy::Zb1).oom, "{row:?}: ZB1 should OOM");
            assert!(cell(&cells, Strategy::Zb2).oom, "{row:?}: ZB2 should OOM");
        }
    }
}

#[test]
fn weipipe_memory_is_close_to_1f1b_and_fsdp() {
    // Paper Table 2: WeiPipe 9.4 GiB vs FSDP 8.6 vs 1F1B 13 at H=1024 —
    // same class, slightly above FSDP (bigger send/recv buffers).
    for (row, cells) in table2() {
        let wp = cell(&cells, Strategy::WeiPipeInterleave).mem_gib;
        let fsdp = cell(&cells, Strategy::Fsdp).mem_gib;
        assert!(
            wp >= fsdp && wp < fsdp * 1.5,
            "{row:?}: WeiPipe {wp:.1} GiB vs FSDP {fsdp:.1} GiB out of band"
        );
    }
}

#[test]
fn table4_baselines_can_win_the_fast_small_corner() {
    // Paper §6.1.3: on 8 GPUs all-NVLink with 16 layers, "conventional
    // methods may have advantages" — FSDP beats WeiPipe at H=1024/S=4096.
    let rows = table4();
    let first = rows
        .iter()
        .find(|(r, _)| r.hidden == 1024 && r.seq == 4096)
        .expect("row exists");
    let wp = cell(&first.1, Strategy::WeiPipeInterleave).throughput;
    let fsdp = cell(&first.1, Strategy::Fsdp).throughput;
    assert!(
        fsdp > wp,
        "small-scale NVLink corner: FSDP {fsdp:.0} should beat WeiPipe {wp:.0}"
    );
}

#[test]
fn weak_scaling_weipipe_holds_per_gpu_throughput_best() {
    // Figure 7: per-GPU throughput from 8 to 32 GPUs degrades least for
    // WeiPipe.
    let points = fig7_weak_large();
    let degradation = |s: Strategy| -> f64 {
        let first = cell(&points.first().expect("points").cells, s).throughput;
        let last = cell(&points.last().expect("points").cells, s).throughput;
        last / first
    };
    let wp = degradation(Strategy::WeiPipeInterleave);
    let f1b = degradation(Strategy::OneFOneB);
    let fsdp = degradation(Strategy::Fsdp);
    assert!(
        wp > f1b && wp > fsdp,
        "weak-scaling retention: WeiPipe {wp:.2} vs 1F1B {f1b:.2} vs FSDP {fsdp:.2}"
    );
}

#[test]
fn strong_scaling_weipipe_gains_most_from_added_gpus() {
    // Figure 9: fixed batch 256, 8→32 GPUs — WeiPipe's total throughput
    // scales best.
    let points = fig9_strong_large();
    let speedup = |s: Strategy| -> f64 {
        let first = &points.first().expect("points");
        let last = &points.last().expect("points");
        (cell(&last.cells, s).throughput * last.gpus as f64)
            / (cell(&first.cells, s).throughput * first.gpus as f64)
    };
    let wp = speedup(Strategy::WeiPipeInterleave);
    let f1b = speedup(Strategy::OneFOneB);
    let fsdp = speedup(Strategy::Fsdp);
    assert!(wp > 1.5, "WeiPipe must gain from 4× GPUs: {wp:.2}");
    assert!(
        wp >= f1b && wp >= fsdp,
        "strong scaling: WeiPipe {wp:.2} vs 1F1B {f1b:.2} vs FSDP {fsdp:.2}"
    );
}

#[test]
fn weipipe_memory_is_balanced_across_ranks_unlike_1f1b() {
    // §4.2.2: "WeiPipe-Interleave utilizes idle memory … leading to more
    // balanced memory utilization." In 1F1B, rank 0 keeps P microbatches'
    // activations in flight while the last rank keeps one; in WeiPipe every
    // worker's in-flight set is the same size.
    use wp_sched::{build, PipelineSpec, Strategy};
    use wp_sim::{simulate, CostModel, GpuSpec, ModelDims, SimOptions};
    let p = 8;
    let n = 32;
    let dims = ModelDims::paper(2048, 32, 8192, 8);
    let cluster = ClusterSpec::nvlink_island(p);
    // Compare raw activation residency (no checkpointing): the in-flight
    // depth difference is the point.
    let peaks = |strategy: Strategy| -> Vec<u64> {
        let sched = build(strategy, PipelineSpec::new(p, n).without_recompute());
        let cost = CostModel::for_schedule(dims, GpuSpec::a800(), &sched);
        simulate(&sched, &cost, &cluster, SimOptions::default())
            .expect("simulates")
            .peak_mem
    };
    let f1b = peaks(Strategy::OneFOneB);
    let skew_f1b = f1b[0] as f64 / f1b[p - 1] as f64;
    assert!(skew_f1b > 1.3, "1F1B rank 0 should carry more: {f1b:?}");
    let wp = peaks(Strategy::WeiPipeInterleave);
    let max = *wp.iter().max().expect("ranks") as f64;
    let min = *wp.iter().min().expect("ranks") as f64;
    assert!(max / min < 1.15, "WeiPipe memory should balance: {wp:?}");
}

#[test]
fn wzb2_approaches_zero_bubble() {
    // §4.2.3.2: WZB2's seamless handover nearly eliminates the bubble
    // relative to WeiPipe-Interleave at the same configuration.
    let row = RowConfig {
        hidden: 2048,
        seq: 8192,
        microbatch: 8,
    };
    let cluster = ClusterSpec::nvlink_island(8);
    let wp = run_cell(Strategy::WeiPipeInterleave, row, 32, &cluster, 8 * 8 * 8);
    let wzb2 = run_cell(Strategy::Wzb2, row, 32, &cluster, 8 * 8 * 8);
    assert!(
        wzb2.bubble_ratio < wp.bubble_ratio,
        "WZB2 bubble {:.3} should undercut WeiPipe-Interleave {:.3}",
        wzb2.bubble_ratio,
        wp.bubble_ratio
    );
}
