//! The correctness crown: every distributed strategy must train the same
//! model to the same weights as one process — across world sizes,
//! microbatch counts, optimizers, and checkpointing settings.

use weipipe::{run_distributed, run_single, OptimKind, Strategy, TrainSetup};
use wp_tensor::DType;

fn check(strategy: Strategy, ranks: usize, setup: &TrainSetup, tol_loss: f32, tol_param: f32) {
    let reference = run_single(setup);
    let out = run_distributed(strategy, ranks, setup).expect("healthy world");
    let dl = out.max_loss_diff(&reference);
    let dp = out.max_param_diff(&reference);
    assert!(
        dl <= tol_loss,
        "{strategy:?} P={ranks}: loss diff {dl} > {tol_loss}\n got {:?}\nwant {:?}",
        out.losses,
        reference.losses
    );
    assert!(
        dp <= tol_param,
        "{strategy:?} P={ranks}: param diff {dp} > {tol_param}"
    );
}

#[test]
fn all_strategies_match_reference_p2() {
    let setup = TrainSetup::tiny(2, 4);
    for strategy in weipipe::runtime_strategies() {
        check(strategy, 2, &setup, 2e-4, 2e-3);
    }
}

#[test]
fn all_strategies_match_reference_p4() {
    let setup = TrainSetup::tiny(4, 8);
    for strategy in weipipe::runtime_strategies() {
        check(strategy, 4, &setup, 2e-4, 2e-3);
    }
}

#[test]
fn multi_layer_chunks_match_reference() {
    // 8 layers across 4 ranks: two layers per circulating chunk — the
    // paper's actual regime (32 layers on 8–32 GPUs).
    let mut setup = TrainSetup::tiny(8, 8);
    setup.iters = 2;
    for strategy in [
        Strategy::WeiPipeInterleave,
        Strategy::WeiPipeNaive,
        Strategy::OneFOneB,
        Strategy::Zb1,
        Strategy::Fsdp,
    ] {
        check(strategy, 4, &setup, 3e-4, 3e-3);
    }
}

#[test]
fn weipipe_matches_reference_p8_many_rounds() {
    // Three circulation rounds on a wider ring.
    let mut setup = TrainSetup::tiny(8, 24);
    setup.iters = 2;
    check(Strategy::WeiPipeInterleave, 8, &setup, 3e-4, 3e-3);
}

#[test]
fn adamw_trajectories_match() {
    let mut setup = TrainSetup::tiny(4, 8);
    setup.optim = OptimKind::AdamW { lr: 2e-3 };
    setup.iters = 3;
    for strategy in [
        Strategy::WeiPipeInterleave,
        Strategy::OneFOneB,
        Strategy::Fsdp,
    ] {
        check(strategy, 4, &setup, 3e-4, 3e-3);
    }
}

#[test]
fn recompute_is_numerically_transparent() {
    let mut setup = TrainSetup::tiny(4, 8);
    setup.recompute = true;
    for strategy in [
        Strategy::WeiPipeInterleave,
        Strategy::WeiPipeNaive,
        Strategy::OneFOneB,
        Strategy::GPipe,
        Strategy::Fsdp,
    ] {
        check(strategy, 4, &setup, 2e-4, 2e-3);
    }
}

#[test]
fn fp16_wire_training_converges() {
    // Mixed-precision wire: not bit-equal to the reference, but must train.
    let mut setup = TrainSetup::tiny(2, 4);
    setup.wire = DType::F16;
    setup.iters = 6;
    let out = run_distributed(Strategy::WeiPipeInterleave, 2, &setup).expect("healthy world");
    assert!(
        out.losses.last().expect("ran") < out.losses.first().expect("ran"),
        "fp16-wire training must still reduce loss: {:?}",
        out.losses
    );
    // And stay close to the f32 trajectory.
    let mut setup32 = setup.clone();
    setup32.wire = DType::F32;
    let ref32 = run_distributed(Strategy::WeiPipeInterleave, 2, &setup32).expect("healthy world");
    assert!(
        out.max_loss_diff(&ref32) < 0.05,
        "fp16 drift too large: {:?} vs {:?}",
        out.losses,
        ref32.losses
    );
}

#[test]
fn weipipe_variants_agree_with_each_other_exactly_in_shape() {
    // Naive and Interleave execute the same math in different orders; their
    // trajectories must agree to reduction-order noise.
    let setup = TrainSetup::tiny(4, 8);
    let a = run_distributed(Strategy::WeiPipeNaive, 4, &setup).expect("healthy world");
    let b = run_distributed(Strategy::WeiPipeInterleave, 4, &setup).expect("healthy world");
    assert!(a.max_loss_diff(&b) < 2e-4);
    assert!(a.max_param_diff(&b) < 2e-3);
    // Naive moves strictly more bytes (its documented flaw).
    assert!(
        a.bytes_sent > b.bytes_sent,
        "naive {} should exceed interleave {}",
        a.bytes_sent,
        b.bytes_sent
    );
}

#[test]
fn loss_scaling_is_numerically_transparent_in_f32() {
    // §4.3 mixed precision: a static loss scale must cancel exactly through
    // unscaled updates, distributed and single-process alike.
    let mut setup = TrainSetup::tiny(4, 8);
    setup.loss_scale = 1024.0;
    setup.iters = 3;
    for strategy in [
        Strategy::WeiPipeInterleave,
        Strategy::Fsdp,
        Strategy::OneFOneB,
    ] {
        check(strategy, 4, &setup, 3e-4, 3e-3);
    }
    // And matches the unscaled single-process run too (scaling is a no-op
    // in f32 up to rounding).
    let unscaled = run_single(&TrainSetup {
        loss_scale: 1.0,
        ..setup.clone()
    });
    let scaled = run_single(&setup);
    assert!(scaled.max_loss_diff(&unscaled) < 1e-4);
    assert!(scaled.max_param_diff(&unscaled) < 1e-3);
}

#[test]
fn lr_schedules_apply_identically_everywhere() {
    let mut setup = TrainSetup::tiny(2, 4);
    setup.lr_schedule = wp_optim::LrSchedule::WarmupCosine {
        warmup: 2,
        total: 6,
        min_ratio: 0.1,
    };
    setup.iters = 5;
    check(Strategy::WeiPipeInterleave, 2, &setup, 2e-4, 2e-3);
    check(Strategy::Ddp, 2, &setup, 2e-4, 2e-3);
    // The schedule must actually change the trajectory vs constant LR.
    let constant = run_single(&TrainSetup {
        lr_schedule: wp_optim::LrSchedule::Constant,
        ..setup.clone()
    });
    let warmed = run_single(&setup);
    assert!(
        warmed.max_param_diff(&constant) > 1e-6,
        "schedule had no effect"
    );
}

#[test]
fn gqa_models_train_equivalently() {
    // Grouped-query attention changes the k/v projection shapes; the
    // circulating chunks and the interpreter must follow.
    let mut setup = TrainSetup::tiny(4, 8);
    setup.model = setup.model.with_gqa(1); // multi-query
    for strategy in [
        Strategy::WeiPipeInterleave,
        Strategy::OneFOneB,
        Strategy::Fsdp,
    ] {
        check(strategy, 4, &setup, 2e-4, 2e-3);
    }
}

#[test]
fn corpus_data_source_trains_equivalently() {
    // Text training (char-LM path) must obey the same strategy equivalence
    // as the synthetic task.
    let corpus: Vec<u32> = (0..400u32).map(|i| (i * 7 + i / 3) % 11).collect();
    let mut setup = TrainSetup::tiny(4, 8);
    setup.data = weipipe::DataSource::Corpus(std::sync::Arc::new(corpus));
    setup.seq = 8;
    setup.iters = 3;
    for strategy in [Strategy::WeiPipeInterleave, Strategy::Fsdp] {
        check(strategy, 4, &setup, 2e-4, 2e-3);
    }
}

#[test]
fn losses_actually_decrease_under_weipipe() {
    let mut setup = TrainSetup::tiny(2, 8);
    setup.iters = 8;
    setup.optim = OptimKind::AdamW { lr: 3e-3 };
    let out = run_distributed(Strategy::WeiPipeInterleave, 2, &setup).expect("healthy world");
    let first = out.losses.first().expect("ran");
    let last = out.losses.last().expect("ran");
    assert!(last < first, "no learning: {:?}", out.losses);
}
