//! No-op `Serialize`/`Deserialize` derives for the offline `serde` stub.
//!
//! Nothing in the workspace serializes through serde yet — the derives exist
//! so type definitions keep their upstream-compatible annotations. Each
//! derive expands to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
