//! Offline workalike for the subset of `criterion` this workspace's benches
//! use: groups, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`.
//!
//! Measurement is deliberately simple — warm up once, time `sample_size`
//! iterations, report mean wall-clock per iteration — because these benches
//! exist to show relative movement between strategies, not to be a
//! statistics engine. Under `cargo test` (which passes `--test` to
//! `harness = false` targets) benches are skipped entirely.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of `std::hint::black_box` for call sites that import it from
/// criterion.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    skip: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, harness=false bench binaries receive `--test`;
        // run nothing (matches real criterion's behaviour).
        let skip = std::env::args().any(|a| a == "--test" || a == "--list");
        Criterion { skip }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            skip: self.skip,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: String::new(),
            sample_size: 20,
            skip: self.skip,
            _marker: std::marker::PhantomData,
        };
        g.bench_function(name, f);
        self
    }
}

/// Identifier for a parameterised benchmark, `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("matmul", 256)` → `matmul/256`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    skip: bool,
    // Tie the group's lifetime to the Criterion borrow like upstream does.
    _marker: std::marker::PhantomData<&'a ()>,
}

// Separate constructor site uses the struct literal without the marker;
// provide it via Default-ish shorthand.
#[allow(clippy::needless_update)]
impl<'a> BenchmarkGroup<'a> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.skip {
            return self;
        }
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0.0,
            ran: 0,
        };
        f(&mut b);
        let label = if self.name.is_empty() {
            format!("{id}")
        } else {
            format!("{}/{id}", self.name)
        };
        if b.ran > 0 {
            println!("{label:<40} {:>12.0} ns/iter", b.elapsed_ns / b.ran as f64);
        }
        self
    }

    /// Run `f(bencher, input)` as a benchmark named by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (upstream flushes reports here; we have none).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
    ran: u64,
}

impl Bencher {
    /// Time `f`, called `sample_size` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns += t0.elapsed().as_nanos() as f64;
        self.ran += self.iters;
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs_closures() {
        let mut c = Criterion { skip: false };
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // 1 warm-up + 3 timed.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("mm", 64).to_string(), "mm/64");
    }
}
