//! Offline workalike for the `serde` facade.
//!
//! The workspace annotates its schedule IR with `#[derive(Serialize,
//! Deserialize)]` for forward compatibility, but nothing serializes through
//! serde yet. This stub supplies marker traits and no-op derives so those
//! annotations compile without a registry. Replace with real serde when one
//! is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (type namespace; the derive
/// macro of the same name lives in the macro namespace).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
