//! Offline workalike for the subset of `rand` 0.9 this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::random_range`, and
//! `distr::{Distribution, Uniform}`.
//!
//! The generator is SplitMix64, not ChaCha12, so streams differ from the
//! real `rand` crate — but they are deterministic functions of the seed,
//! which is all the workspace's seeded-init and synthetic-data paths need.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: a SplitMix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One mixing round so nearby seeds diverge immediately.
            let mut r = StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            };
            let _ = r.next_u64();
            r
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Ranges `Rng::random_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// One value uniformly drawn from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distributions, mirroring `rand::distr`.
pub mod distr {
    use super::{RngCore, SampleRange};

    /// Error from constructing a distribution with an invalid range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Error;

    impl core::fmt::Display for Error {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "invalid distribution parameters")
        }
    }

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl Uniform<f32> {
        /// Uniform over `[low, high)`; errors when the range is empty.
        pub fn new(low: f32, high: f32) -> Result<Self, Error> {
            if low < high {
                Ok(Uniform { low, high })
            } else {
                Err(Error)
            }
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (self.low..self.high).sample_from(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distr::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u32> = (0..8).map(|_| a.random_range(0..1000u32)).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.random_range(0..1000u32)).collect();
        let zs: Vec<u32> = (0..8).map(|_| c.random_range(0..1000u32)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(3..10u32);
            assert!((3..10).contains(&v));
            let w = r.random_range(1..=2u32);
            assert!((1..=2).contains(&w));
            let f = r.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn uniform_distribution_covers_range() {
        let mut r = StdRng::seed_from_u64(3);
        let u = Uniform::new(f32::EPSILON, 1.0).unwrap();
        let mut min = 1.0f32;
        let mut max = 0.0f32;
        for _ in 0..10_000 {
            let v = u.sample(&mut r);
            assert!(v > 0.0 && v < 1.0);
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.05 && max > 0.95, "min={min} max={max}");
    }

    #[test]
    fn uniform_rejects_empty_range() {
        assert!(Uniform::new(1.0, 1.0).is_err());
    }
}
