//! Offline, deterministic workalike for the subset of `proptest` this
//! workspace uses.
//!
//! Supported surface:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn name(x in strat, ..) { .. } }`
//! * `prop_assert!` / `prop_assert_eq!` (non-shrinking: they are `assert!`s)
//! * strategies: integer/float ranges, `sample::select`, `any::<bool>()`,
//!   `Just`
//! * `ProptestConfig::default()`, `::with_cases(n)`, struct-literal update
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case reports the case index; with a fixed
//!   seed per `(test name, case index)`, re-running reproduces it exactly.
//! * **Deterministic by construction.** The RNG for case `k` of test `t` is
//!   `SplitMix64(hash(t) ^ k)`, so a green run is reproducible on any
//!   machine — the property the chaos suite's determinism claims sit on.
//!   Set `PROPTEST_SEED` to perturb every stream at once.

use std::ops::{Range, RangeInclusive};

/// Runner configuration (the subset of `proptest::test_runner::Config`
/// this workspace touches).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case RNG: SplitMix64 keyed by test name and case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    pub fn deterministic(name: &str, case: u64) -> Self {
        // FNV-1a over the test path, xored with the case index and the
        // optional environment seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let env = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ env,
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty draw");
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // `impl Strategy for Strategy` references: allow sampling through a
    // borrow so helper fns can return `impl Strategy`.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl strategy::Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl strategy::Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl strategy::Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl strategy::Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// `prop::sample`-style strategies.
pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy drawing uniformly from a fixed set of options.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly select one of `options` (mirrors `prop::sample::select`).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// `prop::num`-style numeric class strategies.
pub mod num {
    /// Strategies over `f32` bit-pattern classes (mirrors
    /// `proptest::num::f32`'s class constants, combinable with `|`).
    pub mod f32 {
        use crate::strategy::Strategy;
        use crate::TestRng;

        /// A union of float classes; sampling picks one class uniformly.
        #[derive(Debug, Clone, Copy)]
        pub struct FloatClasses(u8);

        const C_NORMAL: u8 = 1;
        const C_ZERO: u8 = 2;
        const C_SUBNORMAL: u8 = 4;

        /// Normal (non-zero, non-subnormal, finite) values of either sign.
        pub const NORMAL: FloatClasses = FloatClasses(C_NORMAL);
        /// Positive and negative zero.
        pub const ZERO: FloatClasses = FloatClasses(C_ZERO);
        /// Subnormal values of either sign.
        pub const SUBNORMAL: FloatClasses = FloatClasses(C_SUBNORMAL);

        impl std::ops::BitOr for FloatClasses {
            type Output = FloatClasses;
            fn bitor(self, rhs: FloatClasses) -> FloatClasses {
                FloatClasses(self.0 | rhs.0)
            }
        }

        impl Strategy for FloatClasses {
            type Value = f32;
            fn sample(&self, rng: &mut TestRng) -> f32 {
                let classes: Vec<u8> = [C_NORMAL, C_ZERO, C_SUBNORMAL]
                    .into_iter()
                    .filter(|c| self.0 & c != 0)
                    .collect();
                assert!(!classes.is_empty(), "empty float class union");
                let class = classes[rng.below(classes.len() as u64) as usize];
                let sign = (rng.next_u64() & 1) << 31;
                let bits = match class {
                    C_NORMAL => {
                        // Exponent in [1, 254], any mantissa: finite normals.
                        let exp = 1 + rng.below(254) as u32;
                        let mant = (rng.next_u64() as u32) & 0x007f_ffff;
                        (exp << 23) | mant
                    }
                    C_ZERO => 0,
                    _ => 1 + rng.below(0x007f_ffff - 1) as u32, // subnormal
                };
                f32::from_bits(sign as u32 | bits)
            }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

    /// Namespaced module tree (mirrors `proptest::prelude::prop`).
    pub mod prop {
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Non-shrinking `prop_assert!`: asserts, annotated with the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Non-shrinking `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// The `proptest!` block: expands each property into a plain `#[test]` that
/// loops `config.cases` times over deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_properties! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_properties! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_properties {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case as u64,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_properties! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a: Vec<u64> = (0..4)
            .map(|c| crate::TestRng::deterministic("t", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| crate::TestRng::deterministic("t", c).next_u64())
            .collect();
        let c: Vec<u64> = (0..4)
            .map(|c| crate::TestRng::deterministic("u", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 1u64..=4, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn select_and_any_work(pick in prop::sample::select(vec![10, 20, 30]), b in any::<bool>()) {
            prop_assert!(pick % 10 == 0);
            prop_assert!(b == (b as u8 == 1)); // any::<bool> yields a valid bool
        }

        #[test]
        fn just_yields_payload(v in Just(7)) {
            prop_assert_eq!(v, 7);
        }
    }

    proptest! {
        // Default config path (no inner attribute).
        #[test]
        fn default_config_runs(x in 0usize..5) {
            prop_assert!(x < 5);
        }
    }
}
