//! Offline workalike for the subset of `rayon` this workspace uses:
//! `slice.par_chunks_mut(n).enumerate().for_each(..)` and
//! `current_num_threads()`.
//!
//! Parallelism is real (scoped OS threads, chunks dealt round-robin), just
//! without rayon's work-stealing pool: each call spins up at most
//! `current_num_threads()` scoped threads. That is the right trade for this
//! workspace, whose only data-parallel site is a coarse-banded matmul.

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The traits user code imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Parallel slice operations, mirroring `rayon::slice`.
pub mod slice {
    use super::current_num_threads;

    /// Extension trait adding `par_chunks_mut` to mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Split into mutable chunks of at most `chunk_size` elements that
        /// downstream adapters process in parallel.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut { chunks: self.chunks_mut(chunk_size).collect() }
        }
    }

    /// Extension trait adding `par_chunks` to shared slices.
    pub trait ParallelSlice<T: Sync> {
        /// Split into shared chunks of at most `chunk_size` elements that
        /// downstream adapters process in parallel.
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunks { chunks: self.chunks(chunk_size).collect() }
        }
    }

    /// Parallel iterator over shared chunks.
    pub struct ParChunks<'a, T> {
        chunks: Vec<&'a [T]>,
    }

    /// Parallel iterator over mutable chunks.
    pub struct ParChunksMut<'a, T> {
        chunks: Vec<&'a mut [T]>,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pair each chunk with its index.
        pub fn enumerate(self) -> EnumeratedChunks<'a, T> {
            EnumeratedChunks { chunks: self.chunks }
        }

        /// Pair each mutable chunk with the matching shared chunk
        /// (truncating to the shorter side, like `Iterator::zip`).
        pub fn zip<'b, U: Sync>(self, other: ParChunks<'b, U>) -> ZippedChunks<'a, 'b, T, U> {
            ZippedChunks {
                pairs: self.chunks.into_iter().zip(other.chunks).collect(),
            }
        }

        /// Apply `f` to every chunk in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Send + Sync,
        {
            self.enumerate().for_each(move |(_, c)| f(c));
        }
    }

    /// Mutable chunks zipped with shared chunks.
    pub struct ZippedChunks<'a, 'b, T, U> {
        pairs: Vec<(&'a mut [T], &'b [U])>,
    }

    impl<'a, 'b, T: Send, U: Sync> ZippedChunks<'a, 'b, T, U> {
        /// Apply `f` to every `(mutable chunk, shared chunk)` pair in
        /// parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((&'a mut [T], &'b [U])) + Send + Sync,
        {
            let workers = current_num_threads().min(self.pairs.len()).max(1);
            if workers <= 1 {
                for pair in self.pairs {
                    f(pair);
                }
                return;
            }
            let mut buckets: Vec<Vec<(&'a mut [T], &'b [U])>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, pair) in self.pairs.into_iter().enumerate() {
                buckets[i % workers].push(pair);
            }
            let f = &f;
            std::thread::scope(|s| {
                for bucket in buckets {
                    s.spawn(move || {
                        for pair in bucket {
                            f(pair);
                        }
                    });
                }
            });
        }
    }

    /// Enumerated parallel iterator over mutable chunks.
    pub struct EnumeratedChunks<'a, T> {
        chunks: Vec<&'a mut [T]>,
    }

    impl<'a, T: Send> EnumeratedChunks<'a, T> {
        /// Apply `f` to every `(index, chunk)` pair in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a mut [T])) + Send + Sync,
        {
            let items: Vec<(usize, &'a mut [T])> =
                self.chunks.into_iter().enumerate().collect();
            let workers = current_num_threads().min(items.len()).max(1);
            if workers <= 1 {
                for item in items {
                    f(item);
                }
                return;
            }
            // Deal chunks round-robin so band `i` always lands on worker
            // `i % workers` — deterministic assignment, disjoint buffers.
            let mut buckets: Vec<Vec<(usize, &'a mut [T])>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, item) in items.into_iter().enumerate() {
                buckets[i % workers].push(item);
            }
            let f = &f;
            std::thread::scope(|s| {
                for bucket in buckets {
                    s.spawn(move || {
                        for item in bucket {
                            f(item);
                        }
                    });
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut v = vec![0u64; 1003];
        v.par_chunks_mut(17).enumerate().for_each(|(_i, chunk)| {
            for x in chunk.iter_mut() {
                *x += 1; // write once per element
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn enumerate_indices_match_offsets() {
        let mut v: Vec<usize> = vec![0; 100];
        v.par_chunks_mut(9).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i;
            }
        });
        for (pos, &idx) in v.iter().enumerate() {
            assert_eq!(idx, pos / 9);
        }
    }

    #[test]
    fn thread_count_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn zip_pairs_matching_chunks() {
        let src: Vec<u64> = (0..100).collect();
        let mut dst = vec![0u64; 100];
        dst.par_chunks_mut(7).zip(src.par_chunks(7)).for_each(|(d, s)| {
            for (x, y) in d.iter_mut().zip(s) {
                *x = *y * 2;
            }
        });
        assert!(dst.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }
}
