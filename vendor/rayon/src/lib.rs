//! Offline workalike for the subset of `rayon` this workspace uses:
//! `slice.par_chunks_mut(n).enumerate().for_each(..)` (optionally zipped
//! with `par_chunks`), the index-level [`par_indices`], and
//! [`current_num_threads`].
//!
//! Parallelism is real, but unlike earlier revisions of this crate the
//! worker threads are spawned **once** into a persistent pool and every
//! dispatch is **allocation-free**: the caller publishes a raw pointer to a
//! stack-resident job descriptor, workers claim task indices with a single
//! `fetch_add`, and the caller participates in the work itself while it
//! waits. This matters because the training hot path asserts zero heap
//! allocations per step (see `wp-nn`'s counting-allocator test) — a pool
//! that collected chunk vectors or spawned scoped threads per call would
//! fail that bar.
//!
//! Pool size is `WP_THREADS` (if set to a positive integer) or else
//! `std::thread::available_parallelism()`, decided once at first use.
//! [`force_sequential`] runs a closure with parallel dispatch disabled on
//! the current thread, which is how the bit-identity checks compare the
//! parallel path against the sequential one in-process.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Number of worker threads a parallel operation may use (the pool size,
/// including the calling thread). Unaffected by [`force_sequential`] so
/// that band/chunk geometry — and therefore task decomposition — is
/// identical in sequential and parallel runs.
pub fn current_num_threads() -> usize {
    pool().threads
}

thread_local! {
    /// Depth of `force_sequential` scopes on this thread.
    static SEQ_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    /// True while this thread is executing tasks inside a pool job; nested
    /// parallel calls run inline instead of deadlocking on the pool.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with parallel dispatch disabled on this thread: every parallel
/// operation started while `f` runs executes inline, in task-index order.
/// Task geometry (chunk boundaries, band sizes) is unchanged, so a kernel
/// that is bit-identical per task produces bit-identical buffers either way
/// — the property the kernel test suites assert.
pub fn force_sequential<R>(f: impl FnOnce() -> R) -> R {
    SEQ_DEPTH.with(|d| d.set(d.get() + 1));
    let out = f();
    SEQ_DEPTH.with(|d| d.set(d.get() - 1));
    out
}

/// True when dispatch must run inline on this thread.
fn sequential_here() -> bool {
    SEQ_DEPTH.with(|d| d.get() > 0) || IN_WORKER.with(|w| w.get())
}

/// Run `f(i)` for every `i in 0..ntasks`, distributing indices across the
/// pool. Each index is executed exactly once; distinct indices may run
/// concurrently, so `f` must only touch disjoint data per index (or data
/// safe to share). Executes inline under [`force_sequential`], from inside
/// another parallel task, or when the pool has a single thread.
pub fn par_indices<F: Fn(usize) + Sync>(ntasks: usize, f: F) {
    if ntasks == 0 {
        return;
    }
    let p = pool();
    if ntasks == 1 || p.threads <= 1 || sequential_here() {
        for i in 0..ntasks {
            f(i);
        }
        return;
    }
    p.run(ntasks, &f);
}

/// A published job: a borrowed task closure plus claim/served counters.
/// Lives on the publishing caller's stack; workers hold a raw pointer to it
/// only between publication and the final `active` decrement, and the
/// caller does not return (and thus pop the frame) before that.
struct JobDesc {
    /// Fat pointer to the task body (`for<'a> fn(usize)` shaped closure).
    func: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// One past the last task index.
    ntasks: usize,
    /// Set when any task panicked; the caller re-panics after the join.
    panicked: AtomicBool,
}

/// Mutex-guarded pool state. `job` is a `*const JobDesc` stored as usize
/// (0 = idle) so the guard stays `Send`.
struct PoolInner {
    job: usize,
    /// Bumped once per published job; sleeping workers watch for a change.
    epoch: u64,
    /// Workers still attached to the current job.
    active: usize,
}

struct Pool {
    threads: usize,
    inner: Mutex<PoolInner>,
    /// Signalled when a new job is published.
    work: Condvar,
    /// Signalled when the current job fully drains (`active == 0`).
    done: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::env::var("WP_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let pool = Pool {
            threads,
            inner: Mutex::new(PoolInner {
                job: 0,
                epoch: 0,
                active: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        };
        // The calling thread participates in every job, so spawn one fewer
        // worker than the pool width.
        for _ in 1..threads {
            std::thread::Builder::new()
                .name("wp-rayon-worker".into())
                .spawn(worker_loop)
                .expect("spawn pool worker");
        }
        pool
    })
}

fn worker_loop() {
    let p = pool();
    let mut seen = 0u64;
    loop {
        let desc = {
            let mut g = p.inner.lock().expect("pool lock");
            while g.epoch == seen {
                g = p.work.wait(g).expect("pool wait");
            }
            seen = g.epoch;
            g.job as *const JobDesc
        };
        // Publication set `active` for every worker before notifying, and
        // nulls `job` only after the last decrement below, so `desc` is
        // alive for exactly as long as we use it.
        let desc = unsafe { &*desc };
        IN_WORKER.with(|w| w.set(true));
        let r = catch_unwind(AssertUnwindSafe(|| run_tasks(desc)));
        IN_WORKER.with(|w| w.set(false));
        if r.is_err() {
            desc.panicked.store(true, Ordering::Relaxed);
        }
        let mut g = p.inner.lock().expect("pool lock");
        g.active -= 1;
        if g.active == 0 {
            g.job = 0;
            p.done.notify_all();
        }
    }
}

/// Claim and run task indices until the job is exhausted.
fn run_tasks(desc: &JobDesc) {
    let f = unsafe { &*desc.func };
    loop {
        let i = desc.next.fetch_add(1, Ordering::Relaxed);
        if i >= desc.ntasks {
            return;
        }
        f(i);
    }
}

impl Pool {
    /// Publish `f` over `ntasks` indices, participate, and wait for the
    /// drain. Serializes concurrent callers (one job in flight at a time).
    fn run(&self, ntasks: usize, f: &(dyn Fn(usize) + Sync)) {
        let desc = JobDesc {
            func: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &(dyn Fn(usize) + Sync)>(f)
            },
            next: AtomicUsize::new(0),
            ntasks,
            panicked: AtomicBool::new(false),
        };
        {
            let mut g = self.inner.lock().expect("pool lock");
            while g.job != 0 {
                g = self.done.wait(g).expect("pool wait");
            }
            g.job = &desc as *const JobDesc as usize;
            g.epoch += 1;
            g.active = self.threads - 1;
            self.work.notify_all();
        }
        // Participate; even if our own slice panics we must not unwind (and
        // free `desc`) while workers still hold a pointer to it.
        let r = catch_unwind(AssertUnwindSafe(|| run_tasks(&desc)));
        if r.is_err() {
            desc.panicked.store(true, Ordering::Relaxed);
        }
        let mut g = self.inner.lock().expect("pool lock");
        while g.active != 0 {
            g = self.done.wait(g).expect("pool wait");
        }
        g.job = 0;
        drop(g);
        if desc.panicked.load(Ordering::Relaxed) {
            panic!("parallel task panicked");
        }
    }
}

/// The traits user code imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Parallel slice operations, mirroring `rayon::slice`.
///
/// Unlike earlier revisions these adapters never collect chunks into a
/// `Vec`: they carry the base pointer and chunk geometry and materialize
/// each chunk lazily inside the claiming task, keeping dispatch
/// allocation-free.
pub mod slice {
    use super::par_indices;
    use std::marker::PhantomData;

    /// Number of `chunk`-sized pieces covering `len` elements.
    fn chunk_count(len: usize, chunk: usize) -> usize {
        len.div_ceil(chunk)
    }

    /// Extension trait adding `par_chunks_mut` to mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Split into mutable chunks of at most `chunk_size` elements that
        /// downstream adapters process in parallel.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunksMut {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                chunk: chunk_size,
                _marker: PhantomData,
            }
        }
    }

    /// Extension trait adding `par_chunks` to shared slices.
    pub trait ParallelSlice<T: Sync> {
        /// Split into shared chunks of at most `chunk_size` elements that
        /// downstream adapters process in parallel.
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunks {
                ptr: self.as_ptr(),
                len: self.len(),
                chunk: chunk_size,
                _marker: PhantomData,
            }
        }
    }

    /// Parallel iterator over shared chunks (geometry only; chunks are
    /// sliced lazily per task).
    pub struct ParChunks<'a, T> {
        ptr: *const T,
        len: usize,
        chunk: usize,
        _marker: PhantomData<&'a [T]>,
    }

    /// Parallel iterator over mutable chunks (geometry only; chunks are
    /// sliced lazily per task and are disjoint by construction).
    pub struct ParChunksMut<'a, T> {
        ptr: *mut T,
        len: usize,
        chunk: usize,
        _marker: PhantomData<&'a mut [T]>,
    }

    /// `i`-th chunk of a `(ptr, len, chunk)` mutable decomposition.
    ///
    /// # Safety
    /// `i < chunk_count(len, chunk)` and no two live slices for the same
    /// `i` — guaranteed by the exactly-once index dispatch.
    unsafe fn chunk_at_mut<'a, T>(ptr: *mut T, len: usize, chunk: usize, i: usize) -> &'a mut [T] {
        let start = i * chunk;
        let n = chunk.min(len - start);
        unsafe { std::slice::from_raw_parts_mut(ptr.add(start), n) }
    }

    /// `i`-th chunk of a `(ptr, len, chunk)` shared decomposition.
    ///
    /// # Safety
    /// `i < chunk_count(len, chunk)`.
    unsafe fn chunk_at<'a, T>(ptr: *const T, len: usize, chunk: usize, i: usize) -> &'a [T] {
        let start = i * chunk;
        let n = chunk.min(len - start);
        unsafe { std::slice::from_raw_parts(ptr.add(start), n) }
    }

    /// Wrapper making a raw base pointer `Send + Sync` for dispatch into
    /// pool tasks; soundness comes from the disjointness of per-index
    /// chunks, not from this type.
    struct SendPtr<T>(T);
    unsafe impl<T> Send for SendPtr<T> {}
    unsafe impl<T> Sync for SendPtr<T> {}

    impl<T: Copy> SendPtr<T> {
        /// Read the wrapped pointer. A method (rather than field access)
        /// so closures capture the whole `Sync` wrapper under RFC 2229
        /// disjoint capture, not the bare non-`Sync` pointer field.
        fn get(&self) -> T {
            self.0
        }
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pair each chunk with its index.
        pub fn enumerate(self) -> EnumeratedChunks<'a, T> {
            EnumeratedChunks { inner: self }
        }

        /// Pair each mutable chunk with the matching shared chunk
        /// (truncating to the shorter side, like `Iterator::zip`).
        pub fn zip<'b, U: Sync>(self, other: ParChunks<'b, U>) -> ZippedChunks<'a, 'b, T, U> {
            ZippedChunks { a: self, b: other }
        }

        /// Apply `f` to every chunk in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut [T]) + Send + Sync,
        {
            self.enumerate().for_each(move |(_, c)| f(c));
        }
    }

    /// Mutable chunks zipped with shared chunks.
    pub struct ZippedChunks<'a, 'b, T, U> {
        a: ParChunksMut<'a, T>,
        b: ParChunks<'b, U>,
    }

    impl<'a, 'b, T: Send, U: Sync> ZippedChunks<'a, 'b, T, U> {
        /// Apply `f` to every `(mutable chunk, shared chunk)` pair in
        /// parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((&'a mut [T], &'b [U])) + Send + Sync,
        {
            let n =
                chunk_count(self.a.len, self.a.chunk).min(chunk_count(self.b.len, self.b.chunk));
            let (ap, al, ac) = (SendPtr(self.a.ptr), self.a.len, self.a.chunk);
            let (bp, bl, bc) = (SendPtr(self.b.ptr), self.b.len, self.b.chunk);
            par_indices(n, move |i| {
                let da = unsafe { chunk_at_mut(ap.get(), al, ac, i) };
                let sb = unsafe { chunk_at(bp.get(), bl, bc, i) };
                f((da, sb));
            });
        }
    }

    /// Enumerated parallel iterator over mutable chunks.
    pub struct EnumeratedChunks<'a, T> {
        inner: ParChunksMut<'a, T>,
    }

    impl<'a, T: Send> EnumeratedChunks<'a, T> {
        /// Apply `f` to every `(index, chunk)` pair in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &'a mut [T])) + Send + Sync,
        {
            let n = chunk_count(self.inner.len, self.inner.chunk);
            let (p, l, c) = (SendPtr(self.inner.ptr), self.inner.len, self.inner.chunk);
            par_indices(n, move |i| {
                let chunk = unsafe { chunk_at_mut(p.get(), l, c, i) };
                f((i, chunk));
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut v = vec![0u64; 1003];
        v.par_chunks_mut(17).enumerate().for_each(|(_i, chunk)| {
            for x in chunk.iter_mut() {
                *x += 1; // write once per element
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn enumerate_indices_match_offsets() {
        let mut v: Vec<usize> = vec![0; 100];
        v.par_chunks_mut(9).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i;
            }
        });
        for (pos, &idx) in v.iter().enumerate() {
            assert_eq!(idx, pos / 9);
        }
    }

    #[test]
    fn thread_count_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn zip_pairs_matching_chunks() {
        let src: Vec<u64> = (0..100).collect();
        let mut dst = vec![0u64; 100];
        dst.par_chunks_mut(7)
            .zip(src.par_chunks(7))
            .for_each(|(d, s)| {
                for (x, y) in d.iter_mut().zip(s) {
                    *x = *y * 2;
                }
            });
        assert!(dst.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn par_indices_each_index_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits: Vec<AtomicU32> = (0..257).map(|_| AtomicU32::new(0)).collect();
        super::par_indices(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn force_sequential_matches_parallel() {
        let run = |seq: bool| -> Vec<u64> {
            let mut v = vec![0u64; 500];
            let body = |v: &mut Vec<u64>| {
                v.par_chunks_mut(13).enumerate().for_each(|(i, c)| {
                    for (j, x) in c.iter_mut().enumerate() {
                        *x = (i as u64) * 1000 + j as u64;
                    }
                });
            };
            if seq {
                super::force_sequential(|| body(&mut v));
            } else {
                body(&mut v);
            }
            v
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let total = AtomicU32::new(0);
        super::par_indices(8, |_| {
            // A nested dispatch must not deadlock on the single-job pool.
            super::par_indices(8, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_callers_serialize_without_deadlock() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let total = AtomicU32::new(0);
        let total = &total;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..50 {
                        super::par_indices(16, |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 16);
    }
}
